"""Worker-side-sampling process backend (the last lock-step stage made
parallel).

:class:`~repro.runtime.backends.process_pool.ProcessPoolBackend` freed
trainer forward/backward from the GIL, but still samples every
mini-batch in the parent: the sample stage — the stage HyScale-GNN
dedicates most CPU cores to (paper §III-A, Table-I thread split) —
remains serialized exactly where the paper parallelizes it. This
backend pushes neighbor sampling into the workers, the recipe of
DistDGL (Zheng et al., "Distributed Hybrid CPU and GPU Training for
GNNs on Billion-Scale Graphs") and HitGNN:

* the **parent** deals only *target-id shards*: it drives the shared
  :class:`~repro.runtime.core.BatchPlan` exactly as every other
  backend does (one permutation per epoch, per-trainer quota slices in
  trainer order — epoch coverage stays a plan property, so it stays
  **exact**), ships each worker its slice (a few KB of int64 ids
  instead of a whole sampled computational graph), runs the all-reduce
  over returned gradients, and — crucially — still adjudicates every
  DRM offload decision: :meth:`~repro.runtime.core.TrainingSession.timing_step`
  runs in the parent on the workers' realized batch statistics, so the
  engine's split trajectory stays well-defined and lock-step;
* each **worker** maps the CSR topology zero-copy from the
  :class:`~repro.runtime.shm.SharedFeatureStore` (whose manifest now
  carries the :class:`~repro.runtime.shm.SharedSamplerSpec`), rebuilds
  the session's sampler family locally with its **own independent RNG
  stream** (:func:`repro.sampling.worker_stream_seed` —
  ``SeedSequence``-derived, so worker ``k``'s draws never depend on
  how many workers run), and executes the full producer chain
  ``sample → gather → transfer`` plus forward/backward before
  returning ``(loss, accuracy, stats, flat gradients)``.

Wire traffic per iteration drops from one pickled computational graph
per trainer to one target-id slice down and one
:class:`~repro.sampling.base.MiniBatchStats` + echoed target ids +
flat gradient up.

Because neighbor draws come from per-worker streams rather than the
parent's single stream, bit-parity with the virtual reference is
impossible *by design* — this backend declares
``conformance_tier = "statistical"``, the tier PR 3 built for exactly
this: the kit asserts exact iteration count, exact epoch coverage,
per-worker shard disjointness (via :attr:`ProcessSamplingReport.worker_targets`),
DRM work conservation and loss/parameter closeness. Iterations remain
a synchronized barrier (unlike the pipelined plane there is no
look-ahead), so the DRM engine still observes iteration ``i`` before
``i + 1``'s quotas are read. The fused plane
(:mod:`.process_pipelined`) lifts exactly that restriction: it
subclasses this backend and adds bounded look-ahead dealing plus
worker-local stage overlap. The backend-author contract both planes
follow is documented in ``docs/backends.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ...errors import WorkerError
from ..resctl import fold_worker_realized
from .process_pool import (
    ProcessPoolBackend,
    ProcessReport,
    _WorkerReplica,
    _WorkerSpec,
    _run_worker,
)


@dataclass
class ProcessSamplingReport(ProcessReport):
    """A :class:`ProcessReport` plus the coverage evidence worker-side
    sampling owes the statistical conformance tier.

    ``trained_targets`` is the per-dispatch list of target-id slices in
    dispatch order (what the tier's epoch-coverage assertion consumes,
    same field the pipelined report exposes). ``worker_targets[k]`` is
    worker ``k``'s list of **echoed** target ids — the ``V^L`` of the
    batches it actually sampled and trained, reported back over the
    pipe, *not* a copy of the parent's dispatch bookkeeping — so the
    kit's partition assertion (union equals the dispatched target set,
    no target trained by two workers) genuinely audits worker
    behavior.
    """

    trained_targets: list[np.ndarray] = field(default_factory=list)
    worker_targets: list[list[np.ndarray]] = field(default_factory=list)


def _train_sharded_targets(replica: _WorkerReplica, spec: _WorkerSpec,
                           msg):
    """Handle a target-id shard: sample locally, then train.

    ``replica.sampler`` is this worker's private sampler over the
    shared CSR — the whole point of the backend: the sample stage runs
    here, on the worker's core, in parallel with every other worker's.
    The reply echoes the batch's realized target ids (``V^L`` of the
    locally sampled graph) so the parent records what the worker
    *actually trained*, not what it was asked to — the conformance
    kit's per-worker coverage assertion keys off this echo.
    """
    _, it, targets = msg
    t0 = time.perf_counter()
    mb = replica.sampler.sample(targets)
    replica.note_stage("sample", time.perf_counter() - t0)
    rep = replica.train(spec, mb)
    # The per-batch stage snapshot (sample here, load/train inside
    # `replica.train`) rides along with the result so the parent can
    # fold one realized StageTimes per iteration for its monitor.
    return ("result", it, rep.loss, rep.accuracy, mb.stats(),
            np.asarray(mb.targets), replica.model.get_flat_grads(),
            dict(replica.last_stage_s))


def _setup_worker_sampling(store, spec: _WorkerSpec):
    from ...sampling import build_worker_sampler
    replica = _WorkerReplica(store, spec)
    # Private, independently-seeded sampler over the shared topology.
    replica.sampler = build_worker_sampler(store, spec.index)
    return replica, _train_sharded_targets


def _worker_main(conn, manifest, spec: _WorkerSpec) -> None:
    """One sampling trainer replica (module-level: picklable under
    ``spawn``)."""
    _run_worker(conn, manifest, spec, _setup_worker_sampling)


class ProcessSamplingBackend(ProcessPoolBackend):
    """Worker processes that sample their own mini-batches.

    Same construction surface as :class:`ProcessPoolBackend`
    (``timeout_s`` watchdog, ``mp_context`` start method); differs only
    in execution strategy: the parent deals :class:`BatchPlan` shards
    and adjudicates DRM, the workers run sample → gather → transfer →
    train locally. Declares the ``statistical`` conformance tier
    (per-worker RNG streams preclude bit-parity by design).
    """

    name = "process_sampling"
    conformance_tier = "statistical"

    #: Lock-step dealing: a worker's transfer for iteration ``i + 1``
    #: cannot start until the parent has dealt it, which only happens
    #: after iteration ``i``'s gradients were pulled — transfers and
    #: gradient pulls never share the PCIe link in flight, so the
    #: duplex-contention derate must not be priced into this plane's
    #: rows. (The fused subclass keeps batches in flight across the
    #: sync barrier and turns this back on.)
    overlaps_transfer = False

    # -- subclass hooks ------------------------------------------------
    def _worker_entry(self):
        return _worker_main

    def _create_store(self):
        from ..shm import SharedFeatureStore
        return SharedFeatureStore.create(
            self.session.dataset,
            sampler_spec=self.session.shared_sampler_spec())

    def _make_report(self, iterations: int,
                     n: int) -> ProcessSamplingReport:
        return ProcessSamplingReport(iterations=iterations,
                                     num_workers=n,
                                     worker_targets=[[] for _ in
                                                     range(n)])

    # ------------------------------------------------------------------
    def _dispatch(self, it: int, planned, conns, report,
                  stats_by_idx) -> list[int]:
        """Deal target-id shards — no sampling here: everything
        stochastic about *planning* stays in the parent, everything
        stochastic about *sampling* moves to the workers."""
        s = self.session
        busy: list[int] = []
        for idx, trainer in enumerate(s.trainers):
            targets = planned.assignments[idx]
            if targets is None:
                # Idle replica: zero gradients, weight zero in the
                # all-reduce (parent mirrors; worker just applies the
                # averaged update when it arrives).
                trainer.model.zero_grad()
                continue
            report.trained_targets.append(targets)
            self._send(conns, idx, ("train", it, targets))
            busy.append(idx)
        return busy

    def _collect(self, it: int, busy, conns, report, stats_by_idx,
                 losses, accs) -> None:
        """Gather results plus each worker's realized batch statistics
        (the DRM inputs) and its echoed target ids (the coverage
        evidence — recorded from what the worker trained, not from
        what the parent dispatched, so the conformance kit's partition
        assertion actually audits worker behavior)."""
        from ..protocol import Signal

        s = self.session
        self._iter_stage_s: dict[int, dict] = {}
        for idx in busy:
            msg = self._recv(conns, idx)
            tag, rit, loss, acc, st, echoed, grads, stage_s = msg
            if tag != "result" or rit != it:
                raise WorkerError(
                    f"worker {idx} answered {tag!r} for iteration "
                    f"{rit}, expected result for {it}")
            s.trainers[idx].model.set_flat_grads(grads)
            stats_by_idx[idx] = st
            self._iter_stage_s[idx] = stage_s
            report.total_edges += st.total_edges
            report.worker_targets[idx].append(echoed)
            losses.append(loss)
            accs.append(acc)
            report.protocol_log.record(it, Signal.DONE,
                                       s.trainers[idx].name)

    def _realized_stage_times(self, sync_s: float):
        """Fold the iteration's per-worker stage snapshots (shipped
        with each result) plus the parent-measured all-reduce into one
        canonical realized stage map."""
        stage_s = getattr(self, "_iter_stage_s", None)
        if not stage_s:
            return None
        per_trainer = [(trainer.kind, stage_s.get(idx, {}))
                       for idx, trainer in
                       enumerate(self.session.trainers)]
        return fold_worker_realized(per_trainer, sync_s)
