"""Pipelined async execution backend (paper §IV-B, Fig. 7 overlap).

The threaded and process backends realize the training protocol on live
substrates, but both still resolve iterations *lock-step*: every stage
of iteration ``i`` finishes before iteration ``i+1`` starts anywhere.
This backend is the paper's two-stage-prefetch claim made live: the
producer stages of one iteration overlap the train stage of earlier
ones, per trainer, with backpressure end-to-end:

::

    BatchPlan ──dispatcher──► [q_sample] ──sample──► [q_gather]
        ──gather──► [q_transfer] ──transfer──► [q_train] ──► train+sync

* a **dispatcher** thread drains the shared
  :class:`~repro.runtime.core.BatchPlan` (one permutation per epoch,
  quota slices in trainer order — epoch coverage stays *exact*) and fans
  each trainer's targets into its sample queue;
* per trainer, three stage threads — **sample** (via
  ``session.sample_stage``, whose lock keeps the shared RNG stream
  uncorrupted), **feature-gather** (``session.gather_stage``, host-DDR
  row gather) and **quantized transfer** (``session.transfer_stage``,
  the PCIe link policy) — pass items through bounded
  :class:`~repro.runtime.prefetch.PrefetchBuffer` queues;
* the caller's thread is the **train + synchronizer** stage: it consumes
  prepared batches in iteration order, trains every replica, and runs
  the shared all-reduce through ``session.reduce_and_step`` — gradient
  math stays synchronous SGD, identical to every other backend.

**Adaptive look-ahead** (replacing a fixed prefetch ``depth``): after
each iteration the timing plane's
:meth:`~repro.runtime.core.TrainingSession.timing_step` yields modelled
:class:`~repro.perfmodel.model.StageTimes`; :func:`adaptive_depth` turns
the producer/consumer time ratio into an effective depth and every stage
buffer is resized live — deep look-ahead only when the producer stages
are the bottleneck, shallow (less memory in flight) when training is.

Why this backend is **not** bit-identical to the virtual reference with
more than one trainer: per-trainer sample threads interleave draws from
the shared sampler stream in scheduler order, and the dispatcher plans
up to ``depth`` iterations ahead of the DRM engine (Algorithm 1 sees
iteration ``i``'s times only after ``i`` *trains*, by which time the
plan has already sliced quotas for the in-flight iterations). Both are
inherent to overlap — DistDGL's producer/consumer pipeline makes the
same trade. It therefore declares ``conformance_tier = "statistical"``:
the kit asserts exact epoch coverage, target-budget conservation,
DRM-trajectory shape and loss/parameter closeness instead of
bit-parity. With a single trainer and no look-ahead-sensitive state the
stream order is the plan order, so the single-trainer case **is**
bit-identical — pinned by the conformance suite.

This plane's overlap runs on threads under the GIL; the fused plane
(:mod:`.process_pipelined`) reuses its :func:`adaptive_depth` policy
and :class:`StageStats` reporting to run the same overlap *inside*
GIL-free worker processes. The tier contract both planes share is
documented in ``docs/backends.md``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ...errors import ProtocolError
from ...kernels import scoped_counters
from ...perfmodel.model import StageTimes, WorkloadSplit
from ...sim.trace import Timeline
from ..prefetch import PrefetchBuffer
from ..protocol import ProtocolLog, Signal
from ..resctl import (
    DEFAULT_ALLOCATOR,
    NodeAllocator,
    OnlineEstimator,
    fold_worker_realized,
)
from .base import ExecutionBackend
from .options import OverlapOptions

#: Producer stages in pipeline order (the train stage consumes).
PRODUCER_STAGES = ("sample", "gather", "transfer")

#: Valid values of the overlapped planes' ``depth_source`` knob.
DEPTH_SOURCES = ("realized", "model")


def resolve_depth_source(depth_source: str | None) -> str:
    """Resolve an overlapped backend's ``depth_source`` knob.

    ``"realized"`` (the default) steers ``adaptive_depth`` and
    ``drm_step`` from estimator-calibrated stage times — monitored
    wall clocks corrected onto the analytic model's scale;
    ``"model"`` reproduces the purely-analytic (pre-calibration)
    trajectories bit for bit, which is what the regression pins and
    the bit-parity tests construct with.
    """
    if depth_source is None:
        return "realized"
    if depth_source not in DEPTH_SOURCES:
        raise ProtocolError(
            f"unknown depth_source {depth_source!r}; expected one of "
            f"{DEPTH_SOURCES}")
    return depth_source


def seed_depth(session, initial_depth: int, cap: int,
               depth_source: str, estimator=None) -> int:
    """Effective look-ahead for the first window, before any timing
    feedback exists (the iteration-0 depth bugfix).

    ``adaptive_depth`` is only consulted after the first
    ``timing_step``, so historically iteration 0 always ran at the
    configured depth regardless of stage ratios. Under
    ``depth_source="realized"`` a timing+prefetch session now starts
    from the floor — there is no realized signal yet, so claiming the
    full configured window is unjustified — or from the calibrated
    steady-state estimate once the estimator is warm (e.g. a previous
    run through the same backend instance). Sessions that will never
    adapt (functional-only, or prefetch off) keep ``initial_depth``:
    with no feedback loop, a floor-seeded window would throttle the
    whole run, not just its first iterations. ``depth_source="model"``
    preserves the prior trajectory exactly (the regression-pinned
    behavior).
    """
    if depth_source != "realized":
        return initial_depth
    if not (session.has_timing and session.sys_cfg.prefetch):
        return initial_depth
    if estimator is not None and estimator.is_warm():
        times = estimator.calibrate(session.stage_times(None, None))
        return adaptive_depth(times, cap=cap)
    return 1


def resolve_depths(session, initial_depth: int | None,
                   max_depth: int | None) -> tuple[int, int]:
    """Resolve an overlapped backend's ``(initial_depth, max_depth)``.

    The single depth-construction policy both overlapped planes
    (threaded pipeline, fused process pipeline) share: the initial
    depth defaults to the session's ``prefetch_depth`` when two-stage
    prefetching is on (else 1 — lock-step, matching the serialized
    ablation presets); the cap defaults to 8 or the initial depth,
    whichever is larger, so default construction is valid for *any*
    session; an explicitly-passed cap below the initial depth still
    fails loudly.
    """
    if initial_depth is None:
        initial_depth = session.sys_cfg.prefetch_depth \
            if session.sys_cfg.prefetch else 1
    if initial_depth < 1:
        raise ProtocolError("prefetch depth must be >= 1")
    if max_depth is None:
        max_depth = max(8, initial_depth)
    if max_depth < initial_depth:
        raise ProtocolError("max_depth must be >= initial depth")
    return initial_depth, max_depth


def adaptive_depth(times: StageTimes, cap: int, floor: int = 1) -> int:
    """Effective look-ahead from modelled stage-time ratios.

    The producer side of the pipeline needs roughly
    ``t_sample + t_load + t_transfer`` per batch; the consumer retires
    one batch every ``t_prop``. Keeping
    ``ceil(producer / consumer)`` batches in flight is just enough for
    the train stage never to wait on a producer in steady state
    (Little's law with the train stage as the service center); anything
    deeper only adds memory pressure. Clamped to ``[floor, cap]`` so
    the pipeline never starves (depth >= 1 keeps every stage able to
    hand one item forward) and never exceeds the configured cap.
    """
    if cap < floor or floor < 1:
        raise ProtocolError("need cap >= floor >= 1")
    producer = times.t_sample + times.t_load + times.t_transfer
    consumer = times.t_prop
    if producer <= 0.0 or not math.isfinite(producer):
        return floor
    if consumer <= 0.0 or not math.isfinite(consumer):
        return cap
    ratio = producer / consumer
    # Both operands can be finite while their ratio overflows to inf
    # (a denormal consumer); ceil(inf) raises, and an unboundedly
    # producer-bound pipeline wants the cap anyway.
    if not math.isfinite(ratio):
        return cap
    return max(floor, min(cap, math.ceil(ratio)))


@dataclass(frozen=True)
class StageStats:
    """Occupancy accounting of one pipeline stage's buffers, aggregated
    across trainers (the per-stage overlap report)."""

    stage: str
    items: int               # total items that passed through
    high_water: int          # max occupancy seen on any trainer's buffer
    mean_occupancy: float    # mean over buffers of sampled occupancy

    def describe(self) -> str:
        return (f"{self.stage}: items={self.items} "
                f"hw={self.high_water} occ={self.mean_occupancy:.2f}")


def fold_stage_stats(stage: str,
                     entries: list[tuple[int, int, float]]
                     ) -> StageStats:
    """Aggregate per-buffer ``(items, high_water, mean_occupancy)``
    entries into one stage's :class:`StageStats` (items summed,
    high-water maxed, occupancy averaged). Shared by the pipelined
    plane (folding over its in-process buffers) and the fused process
    plane (folding over per-worker accounting shipped back over the
    pipes), so the overlap report can never diverge between them.

    An empty ``entries`` list (a worker whose shard was empty, a stage
    no buffer ever carried) folds to a zeroed record rather than
    tripping ``max()``/``np.mean`` on an empty sequence."""
    if not entries:
        return StageStats(stage=stage, items=0, high_water=0,
                          mean_occupancy=0.0)
    return StageStats(
        stage=stage,
        items=sum(e[0] for e in entries),
        high_water=max(e[1] for e in entries),
        mean_occupancy=float(np.mean([e[2] for e in entries])))


def summarize_overlap(stage_stats: dict[str, StageStats],
                      depth_history: list[tuple[int, int]]) -> str:
    """One-line per-stage overlap report for benches/logs — the single
    formatter behind every overlapped report's ``overlap_summary()``
    (the wall-clock bench renders it in the ``overlap`` column)."""
    stats = " | ".join(s.describe() for s in stage_stats.values())
    depths = [d for _, d in depth_history]
    rng = f"{min(depths)}-{max(depths)}" if depths else "static"
    return f"depth={rng} | {stats}"


@dataclass
class PipelinedReport:
    """Outcome of a pipelined run.

    Field-compatible with the other live planes' reports (the
    conformance kit reads all of them generically), plus the pipeline's
    own observability: per-stage occupancy stats, the adaptive-depth
    trajectory, the exact multiset of trained targets (what the
    statistical tier's coverage assertions consume), and the run's
    kernel-traffic counter delta (``kernel_stats``).
    """

    iterations: int
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    wall_time_s: float = 0.0
    protocol_log: ProtocolLog = field(default_factory=ProtocolLog)
    replicas_consistent: bool = False
    stage_history: list[StageTimes] = field(default_factory=list)
    split_history: list[WorkloadSplit] = field(default_factory=list)
    total_edges: float = 0.0
    virtual_time_s: float = 0.0
    timeline: Timeline = field(default_factory=Timeline)
    trained_targets: list[np.ndarray] = field(default_factory=list)
    stage_stats: dict[str, StageStats] = field(default_factory=dict)
    depth_history: list[tuple[int, int]] = field(default_factory=list)
    prefetch_high_water: int = 0
    kernel_stats: dict[str, int] = field(default_factory=dict)
    #: Per-stage model-vs-realized calibration digest (the resctl
    #: estimator's ``summary()``): correction factor, relative error,
    #: observation count, warmth. Empty on functional-only sessions.
    calibration: dict[str, dict] = field(default_factory=dict)

    def overlap_summary(self) -> str:
        """One-line per-stage overlap report for benches/logs."""
        return summarize_overlap(self.stage_stats, self.depth_history)


class PipelinedBackend(ExecutionBackend):
    """Overlapped producer/consumer execution on live threads.

    Parameters
    ----------
    session:
        The shared runtime core. Timing-plane sessions drive the
        adaptive look-ahead from modelled stage times; functional-only
        sessions run at a fixed depth.
    initial_depth:
        Look-ahead every stage buffer starts with (defaults to the
        session's ``prefetch_depth`` when two-stage prefetching is on,
        else 1 — minimal in-flight work, matching the serialized
        ablation presets).
    max_depth:
        Hard cap the adaptive policy can never exceed. Defaults to 8
        or the initial depth, whichever is larger — default
        construction is valid for *any* session, however deep its
        configured ``prefetch_depth``; an explicitly-passed cap below
        the initial depth still fails loudly.
    timeout_s:
        Watchdog (a monotonic deadline) on every blocking stage handoff
        — a wedged pipeline fails fast instead of hanging the suite.
    depth_source:
        ``"realized"`` (default) calibrates the timing plane against
        monitored stage wall times before it drives ``adaptive_depth``
        and ``drm_step``; ``"model"`` reproduces the purely-analytic
        trajectories bit for bit (see :func:`resolve_depth_source`).
    allocator:
        The node-level :class:`~repro.runtime.resctl.NodeAllocator`
        arbitrating look-ahead depth across concurrent sessions
        (defaults to the process-global one). The run registers on
        entry and releases in a ``finally``.
    """

    name = "pipelined"
    options_cls = OverlapOptions
    conformance_tier = "statistical"

    def __init__(self, session, initial_depth: int | None = None,
                 max_depth: int | None = None,
                 timeout_s: float = 60.0,
                 depth_source: str | None = None,
                 allocator: NodeAllocator | None = None) -> None:
        super().__init__(session)
        self.initial_depth, self.max_depth = resolve_depths(
            session, initial_depth, max_depth)
        if timeout_s <= 0:
            raise ProtocolError("timeout_s must be positive")
        self.timeout_s = timeout_s
        self.depth_source = resolve_depth_source(depth_source)
        self.allocator = allocator if allocator is not None \
            else DEFAULT_ALLOCATOR
        #: Calibrates the analytic model against the monitored wall
        #: times; persists across runs, so a second run on the same
        #: backend starts warm.
        self.estimator = OnlineEstimator(monitor=None)
        self._grant = None

    # ------------------------------------------------------------------
    def run_epoch(self, max_iterations: int | None = None
                  ) -> PipelinedReport:
        """Execute one epoch (or ``max_iterations``, whichever is less)."""
        iters = self.session.iterations_per_epoch()
        if max_iterations is not None:
            iters = min(iters, max_iterations)
        return self.run(iters)

    def run(self, iterations: int) -> PipelinedReport:
        """Execute ``iterations`` synchronized iterations, overlapped.

        Iterations follow the shared batch plan (rolling into fresh
        epoch permutations as needed); the all-reduce stays a per-
        iteration barrier, so only *producer* work runs ahead.
        """
        if iterations < 1:
            raise ProtocolError("iterations must be >= 1")
        # Claim a share of the node's look-ahead budget for this run;
        # the finally returns it the moment the run ends (success or
        # failure), so co-tenant sessions' caps rise immediately.
        self._grant = self.allocator.register(
            name=f"{self.name}:{self.session.dataset.name}",
            max_depth=self.max_depth)
        try:
            return self._run_overlapped(iterations)
        finally:
            self._grant.release()
            self._grant = None

    def _depth_cap(self) -> int:
        """Live adaptive-depth cap: the configured ``max_depth``
        clamped by this run's current allocator share."""
        cap = self.max_depth
        if self._grant is not None and not self._grant.released:
            cap = min(cap, self._grant.depth_cap)
        return max(1, cap)

    def _run_overlapped(self, iterations: int) -> PipelinedReport:
        s = self.session
        n = s.num_trainers
        report = PipelinedReport(iterations=iterations)
        rows: list[list[float]] = []
        depth = seed_depth(s, self.initial_depth, self._depth_cap(),
                           self.depth_source, self.estimator)
        report.depth_history.append((0, depth))

        # One buffer per (stage, trainer): the stage's output queue.
        bufs = {stage: [PrefetchBuffer(depth) for _ in range(n)]
                for stage in PRODUCER_STAGES}
        bufs["train"] = [PrefetchBuffer(depth) for _ in range(n)]
        error: dict = {"exc": None}

        def fail(exc: BaseException) -> None:
            if error["exc"] is None:
                error["exc"] = exc
            for stage_bufs in bufs.values():
                for b in stage_bufs:
                    b.close()

        def dispatcher() -> None:
            try:
                for it, planned in s.work_source.iterate(iterations):
                    for idx in range(n):
                        targets = planned.assignments[idx]
                        if targets is not None:
                            report.trained_targets.append(targets)
                        bufs["sample"][idx].put(
                            (it, targets), timeout=self.timeout_s)
                for b in bufs["sample"]:
                    b.close()
            except BaseException as exc:
                fail(exc)

        def sample_worker(idx: int) -> None:
            try:
                while True:
                    item = bufs["sample"][idx].get(
                        timeout=self.timeout_s)
                    if item is None:
                        bufs["gather"][idx].close()
                        return
                    it, targets = item
                    if targets is None:
                        out = (it, 0, None, None, 0.0)
                    else:
                        t0 = time.perf_counter()
                        mb = s.sample_stage(targets)
                        dt = time.perf_counter() - t0
                        out = (it, int(targets.size), mb, mb.stats(),
                               dt)
                    bufs["gather"][idx].put(out,
                                            timeout=self.timeout_s)
            except BaseException as exc:
                fail(exc)

        def gather_worker(idx: int) -> None:
            try:
                while True:
                    item = bufs["gather"][idx].get(
                        timeout=self.timeout_s)
                    if item is None:
                        bufs["transfer"][idx].close()
                        return
                    it, size, mb, st, dt_sample = item
                    t0 = time.perf_counter()
                    x0 = s.gather_stage(mb) if mb is not None else None
                    dt_gather = time.perf_counter() - t0
                    bufs["transfer"][idx].put(
                        (it, size, mb, st, x0, dt_sample, dt_gather),
                        timeout=self.timeout_s)
            except BaseException as exc:
                fail(exc)

        def transfer_worker(idx: int) -> None:
            kind = s.trainers[idx].kind
            try:
                while True:
                    item = bufs["transfer"][idx].get(
                        timeout=self.timeout_s)
                    if item is None:
                        bufs["train"][idx].close()
                        return
                    it, size, mb, st, x0, dt_sample, dt_gather = item
                    labels = None
                    dt_transfer = 0.0
                    if mb is not None:
                        t0 = time.perf_counter()
                        x0 = s.transfer_stage(x0, kind)
                        dt_transfer = time.perf_counter() - t0
                        labels = s.labels_for(mb)
                    bufs["train"][idx].put(
                        (it, size, mb, st, x0, labels,
                         (dt_sample, dt_gather, dt_transfer)),
                        timeout=self.timeout_s)
            except BaseException as exc:
                fail(exc)

        def scoped(fn):
            # Enlist each stage thread into the session-scoped counter
            # handle so kernel_stats counts only this run's dispatches
            # even when co-tenant sessions overlap in this process.
            def run(*args):
                with scoped_counters(self.counters):
                    fn(*args)
            return run

        threads = [threading.Thread(target=scoped(dispatcher),
                                    daemon=True,
                                    name="pipeline-dispatcher")]
        for idx in range(n):
            for stage, worker in (("sample", sample_worker),
                                  ("gather", gather_worker),
                                  ("transfer", transfer_worker)):
                threads.append(threading.Thread(
                    target=scoped(worker), args=(idx,), daemon=True,
                    name=f"pipeline-{stage}{idx}"))
        counters_before = self.counters.snapshot()
        start = time.perf_counter()
        for t in threads:
            t.start()

        try:
            with scoped_counters(self.counters):
                for it in range(iterations):
                    depth = self._train_iteration(it, bufs, error,
                                                  report, rows, depth)
        finally:
            # Close every buffer first (unblocks any stage thread stuck
            # in put/get — they observe the close and drain out), then
            # join; runs on success and failure alike, so no stage
            # thread outlives the run.
            for stage_bufs in bufs.values():
                for b in stage_bufs:
                    b.close()
            for t in threads:
                t.join(timeout=self.timeout_s)

        # Only reached on the success path (a failure above propagates
        # its own error): a thread that survived its join is wedged
        # outside any buffer wait — fail the run rather than return a
        # report whose stage stats that thread could still be mutating.
        lingering = [t.name for t in threads if t.is_alive()]
        if lingering:
            raise ProtocolError(
                f"pipeline stage threads failed to join within "
                f"{self.timeout_s}s: {lingering}")

        report.wall_time_s = time.perf_counter() - start
        report.kernel_stats = self.counters.delta(counters_before)
        report.replicas_consistent = \
            s.synchronizer.replicas_consistent()
        self._aggregate_stage_stats(bufs, report)
        if s.has_timing:
            report.calibration = self.estimator.summary()
        if s.has_timing and rows:
            timeline = s.make_pipeline().run(rows)
            report.timeline = timeline
            report.virtual_time_s = timeline.makespan
        return report

    # ------------------------------------------------------------------
    def _train_iteration(self, it: int, bufs, error, report, rows,
                         depth: int) -> int:
        """Consume one iteration's prepared batches, train, synchronize,
        and (timing sessions) adapt the look-ahead. Returns the depth in
        effect after this iteration."""
        s = self.session
        stats_cpu = None
        stats_accel: list = []
        sizes: list[int] = []
        losses: list[float] = []
        accs: list[float] = []
        per_trainer: list[tuple[str, dict]] = []

        for idx, trainer in enumerate(s.trainers):
            try:
                item = bufs["train"][idx].get(timeout=self.timeout_s)
            except ProtocolError:
                if error["exc"] is not None:
                    raise error["exc"] from None
                raise
            if item is None:
                raise error["exc"] if error["exc"] is not None else \
                    ProtocolError(
                        f"pipeline for trainer {idx} ended before "
                        f"iteration {it}")
            rit, size, mb, st, x0, labels, durs = item
            if rit != it:
                raise ProtocolError(
                    f"trainer {idx} received iteration {rit}, "
                    f"expected {it} (stage reordering)")
            if trainer.kind == "cpu":
                stats_cpu = st
            elif trainer.kind == "accel":
                stats_accel.append(st)
            sizes.append(size)
            if mb is None:
                trainer.model.zero_grad()
                per_trainer.append((trainer.kind, {}))
                continue
            t0 = time.perf_counter()
            rep = trainer.train_minibatch(mb, x0, labels, s.degrees)
            per_trainer.append((trainer.kind,
                                {"sample": durs[0], "load": durs[1],
                                 "transfer": durs[2],
                                 "train": time.perf_counter() - t0}))
            report.total_edges += st.total_edges
            losses.append(rep.loss)
            accs.append(rep.accuracy)
            report.protocol_log.record(it, Signal.DONE, trainer.name)

        if not any(sz > 0 for sz in sizes):
            raise ProtocolError(
                f"iteration {it} dispatched no work to any trainer")
        sync_start = time.perf_counter()
        s.reduce_and_step(sizes, it)
        sync_s = time.perf_counter() - sync_start
        report.protocol_log.record(it, Signal.SYNC, "synchronizer")
        report.protocol_log.record(it, Signal.ITER_START, "runtime")
        report.losses.append(float(np.mean(losses)))
        report.accuracies.append(float(np.mean(accs)))

        realized = fold_worker_realized(per_trainer, sync_s)
        self.monitor.observe_times(realized)
        if s.has_timing:
            times, row, split = s.timing_step(
                stats_cpu, stats_accel, it,
                estimator=self.estimator, realized=realized,
                calibrate=self.depth_source == "realized",
                overlapped=self.overlaps_transfer)
            rows.append(row)
            report.stage_history.append(times)
            report.split_history.append(split)
            if s.sys_cfg.prefetch:
                want = adaptive_depth(times, cap=self._depth_cap())
                if want != depth:
                    for stage_bufs in bufs.values():
                        for b in stage_bufs:
                            b.resize(want)
                    report.depth_history.append((it + 1, want))
                    depth = want
        return depth

    def _aggregate_stage_stats(self, bufs, report) -> None:
        """Fold per-buffer accounting into the per-stage overlap report."""
        for stage, stage_bufs in bufs.items():
            report.stage_stats[stage] = fold_stage_stats(
                stage, [(b.total_puts, b.high_water, b.mean_occupancy)
                        for b in stage_bufs])
        report.prefetch_high_water = max(
            st.high_water for st in report.stage_stats.values())
