"""Fused process × pipeline backend: worker-local overlapped execution.

HyScale-GNN's core scalability claim (paper §IV) is that multi-process
execution and multi-stage prefetch overlap *compose* on a single node:
every CPU core samples and loads while every trainer trains. The repo's
two statistical-tier planes each realize one half — the
worker-sampling plane (:mod:`.process_sampling`) parallelizes the
sample stage across processes but resolves iterations lock-step; the
pipelined plane (:mod:`.pipelined`) overlaps the producer chain with
training but only on threads under the GIL. This backend fuses them,
the PaGraph/DistDGL-style per-trainer pipeline recipe:

* the **parent** deals target-id shards **ahead** through a bounded
  per-worker queue: a :class:`LookaheadDealer` keeps up to ``depth``
  iterations in flight (dealt but not yet synchronized), where
  ``depth`` is resized live by the same
  :func:`~repro.runtime.backends.pipelined.adaptive_depth`
  producer/consumer ratio logic the pipelined plane uses — deep
  look-ahead only while the sample/gather/transfer chain is the
  bottleneck. The parent still adjudicates every DRM decision
  (:meth:`~repro.runtime.core.TrainingSession.timing_step` on the
  workers' realized batch statistics) and still runs the per-iteration
  all-reduce barrier — only *dealing* runs ahead;
* each **worker** overlaps its local ``sample → gather → quantized
  transfer`` chain with its ``train + sync`` stage:
  :class:`~repro.runtime.prefetch.PrefetchBuffer`-backed stage threads
  over the shared-memory store (CSR topology, features, labels mapped
  zero-copy; the :class:`~repro.runtime.shm.SharedPrefetchSpec` in the
  manifest sizes the buffers), with the same independent
  ``SeedSequence``-derived sampler stream per worker as the
  worker-sampling plane. While the train stage of iteration ``i``
  runs (and waits for ``i``'s averaged gradients), the stage threads
  prepare iterations ``i+1 … i+depth`` — overlap *and* GIL-free
  process parallelism at once.

**DRM lag.** Shards for the in-flight window are sliced from the
:class:`~repro.runtime.core.BatchPlan` with the workload split current
*at deal time*, so an Algorithm-1 adjustment takes effect only once the
window has drained past the shards already dealt — the same
one-window lag the pipelined plane's dispatcher already accepts (and
the tiered kit's work-conservation assertion covers: every dealt
iteration still carries the full target budget). With ``max_depth=1``
the window degenerates to lock-step dealing and this backend is
bit-identical to :class:`ProcessSamplingBackend` — pinned by a
regression test.

Like its parent class, bit-parity with the virtual reference is
impossible by design (per-worker RNG streams), so this backend declares
``conformance_tier = "statistical"`` and passes the full tier —
exact iteration count, exact epoch coverage, the per-worker
shard-partition assertion (via the inherited ``worker_targets``
echoes), DRM work conservation, and loss/parameter closeness.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ...errors import ProtocolError, WorkerError
from ..prefetch import PrefetchBuffer
from ..resctl import DEFAULT_ALLOCATOR, NodeAllocator, OnlineEstimator
from .pipelined import (
    PRODUCER_STAGES,
    StageStats,
    adaptive_depth,
    fold_stage_stats,
    resolve_depth_source,
    resolve_depths,
    seed_depth,
    summarize_overlap,
)
from .process_pool import _WorkerSpec, _run_worker
from .options import ProcessOverlapOptions
from .process_sampling import (
    ProcessSamplingBackend,
    ProcessSamplingReport,
    _setup_worker_sampling,
)

#: Worker-local buffer names, keyed by the stage each buffer feeds
#: (mirrors the pipelined plane's layout: ``sample`` holds dealt
#: shards awaiting the sample thread, ``train`` holds prepared
#: batches awaiting the train+sync consumer).
WORKER_STAGES = (*PRODUCER_STAGES, "train")


# ---------------------------------------------------------------------------
# The bounded look-ahead window (pure — hypothesis-testable)
# ---------------------------------------------------------------------------

class LookaheadDealer:
    """A bounded look-ahead window over a plan iterator.

    Pure sequencing logic, extracted from the parent's drive loop so
    the look-ahead invariants are directly property-testable without
    live workers:

    * :meth:`refill` deals planned iterations until the window holds
      ``depth`` in-flight entries (or the plan is dry) and returns the
      newly dealt ones, in plan order;
    * :meth:`retire` pops the oldest in-flight iteration — the one the
      caller synchronizes next;
    * :meth:`set_depth` resizes the window live (the adaptive policy);
      shrinking never revokes shards already dealt, it only throttles
      future refills — exactly like
      :meth:`~repro.runtime.prefetch.PrefetchBuffer.resize`.

    Because dealing only ever *advances* the plan iterator, the
    concatenation of dealt shards is the plan's own sequence — look-
    ahead changes *when* shards are dealt, never *which* or in what
    order, so epoch coverage stays a plan property (the hypothesis
    suite pins this).
    """

    def __init__(self, plan_iter: Iterator, depth: int) -> None:
        if depth < 1:
            raise ProtocolError("look-ahead depth must be >= 1")
        self._plan_iter = plan_iter
        self._depth = depth
        self._window: deque = deque()
        self._dry = False
        #: Max in-flight count ever observed (the bounded-queue audit).
        self.high_water = 0

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def in_flight(self) -> int:
        return len(self._window)

    def set_depth(self, depth: int) -> None:
        if depth < 1:
            raise ProtocolError("look-ahead depth must be >= 1")
        self._depth = depth

    def refill(self) -> list:
        """Deal up to the window bound; returns the newly dealt
        ``(iteration, planned)`` pairs in plan order."""
        dealt = []
        while not self._dry and len(self._window) < self._depth:
            nxt = next(self._plan_iter, None)
            if nxt is None:
                self._dry = True
                break
            self._window.append(nxt)
            dealt.append(nxt)
        self.high_water = max(self.high_water, len(self._window))
        return dealt

    def retire(self):
        """Pop the oldest in-flight iteration, or ``None`` when both
        the window and the plan are exhausted."""
        if not self._window:
            return None
        return self._window.popleft()


# ---------------------------------------------------------------------------
# Worker process: receive-routing + stage threads
# ---------------------------------------------------------------------------

def _serve_overlapped(conn, replica, spec: _WorkerSpec,
                      handle_train) -> None:
    """The fused worker's message loop: route + overlap.

    The main thread is the **receive router**: it drains the pipe and
    routes ``train`` shards into the sample buffer and ``apply``
    updates into the apply queue — it never blocks on pipeline work, so
    the parent's dealt-ahead messages and the averaged-gradient
    broadcasts always keep flowing. Four daemon threads realize the
    overlap:

    * **sample** — this worker's private, independently-seeded sampler
      over the shared CSR (no lock: one stream, one thread);
    * **gather** — host-DDR feature row gather against the shm mapping;
    * **transfer** — the PCIe quantization policy + label gather;
    * **train+sync** — consumes prepared batches in iteration order,
      trains, sends the result, then *waits for that iteration's
      averaged update* before stepping — gradient math stays
      synchronous SGD while the producer threads run ahead.

    ``handle_train`` is unused (the stage threads replace the one-shot
    handler); the parameter keeps the shared ``_run_worker``
    scaffolding signature.
    """
    from ..core import apply_transfer_policy, gather_feature_rows

    pf = replica.prefetch
    timeout = pf.timeout_s
    bufs = {stage: PrefetchBuffer(pf.capacity)
            for stage in WORKER_STAGES}
    # Applies match dealt items 1:1 (idle iterations are dealt as
    # pass-through shards), but the just-retired iteration's apply
    # can arrive while the window behind it is still fully dealt —
    # hence window capacity + 1 headroom.
    q_apply = PrefetchBuffer(pf.capacity + 1)
    send_lock = threading.Lock()
    error: dict = {"exc": None}

    def safe_send(msg) -> None:
        with send_lock:
            conn.send(msg)

    def fail(exc: BaseException) -> None:
        if error["exc"] is None:
            error["exc"] = exc
            try:
                safe_send(("error", traceback.format_exc()))
            except Exception:
                pass
        for b in (*bufs.values(), q_apply):
            b.close()

    def sample_worker() -> None:
        try:
            while True:
                item = bufs["sample"].get(timeout=timeout)
                if item is None:
                    bufs["gather"].close()
                    return
                it, targets = item
                if targets is None:
                    out = (it, None, None, None, 0.0)
                else:
                    t0 = time.perf_counter()
                    mb = replica.sampler.sample(targets)
                    dt = time.perf_counter() - t0
                    replica.note_stage("sample", dt)
                    out = (it, mb, mb.stats(), np.asarray(mb.targets),
                           dt)
                bufs["gather"].put(out, timeout=timeout)
        except BaseException as exc:
            fail(exc)

    def gather_worker() -> None:
        try:
            while True:
                item = bufs["gather"].get(timeout=timeout)
                if item is None:
                    bufs["transfer"].close()
                    return
                it, mb, st, echoed, dt_sample = item
                dt = 0.0
                x0 = None
                if mb is not None:
                    t0 = time.perf_counter()
                    x0 = gather_feature_rows(replica.features, mb)
                    dt = time.perf_counter() - t0
                    replica.note_stage("load", dt)
                bufs["transfer"].put(
                    (it, mb, st, echoed, x0, dt_sample, dt),
                    timeout=timeout)
        except BaseException as exc:
            fail(exc)

    def transfer_worker() -> None:
        try:
            while True:
                item = bufs["transfer"].get(timeout=timeout)
                if item is None:
                    bufs["train"].close()
                    return
                it, mb, st, echoed, x0, dt_sample, dt_load = item
                labels = None
                dt = 0.0
                if mb is not None:
                    t0 = time.perf_counter()
                    x0 = apply_transfer_policy(
                        x0, spec.kind, spec.transfer_precision)
                    labels = replica.labels[mb.targets]
                    dt = time.perf_counter() - t0
                    replica.note_stage("transfer", dt)
                bufs["train"].put(
                    (it, mb, st, echoed, x0, labels,
                     (dt_sample, dt_load, dt)),
                    timeout=timeout)
        except BaseException as exc:
            fail(exc)

    def train_consumer() -> None:
        try:
            while True:
                item = bufs["train"].get(timeout=timeout)
                if item is None:
                    return
                it, mb, st, echoed, x0, labels, durs = item
                if mb is not None:
                    t0 = time.perf_counter()
                    rep = replica.node.train_minibatch(
                        mb, x0, labels, replica.degrees)
                    dt_train = time.perf_counter() - t0
                    replica.note_stage("train", dt_train)
                    safe_send(("result", it, rep.loss, rep.accuracy,
                               st, echoed,
                               replica.model.get_flat_grads(),
                               {"sample": durs[0], "load": durs[1],
                                "transfer": durs[2],
                                "train": dt_train}))
                # The per-iteration barrier: wait for this iteration's
                # averaged gradients (idle iterations included), then
                # mirror the parent's SGD step — replicas stay
                # bit-equal while the producer threads run ahead.
                a = q_apply.get(timeout=timeout)
                if a is None:
                    return
                ait, avg = a
                if ait != it:
                    raise ProtocolError(
                        f"worker {spec.index} received apply for "
                        f"iteration {ait}, expected {it}")
                replica.model.set_flat_grads(avg)
                replica.opt.step()
        except BaseException as exc:
            fail(exc)

    threads = [
        threading.Thread(target=sample_worker, daemon=True,
                         name=f"wpipe-sample{spec.index}"),
        threading.Thread(target=gather_worker, daemon=True,
                         name=f"wpipe-gather{spec.index}"),
        threading.Thread(target=transfer_worker, daemon=True,
                         name=f"wpipe-transfer{spec.index}"),
        threading.Thread(target=train_consumer, daemon=True,
                         name=f"wpipe-train{spec.index}"),
    ]

    def drain() -> None:
        """Join the pipeline (the parent's ``end`` already closed the
        stream) so post-stream replies never race a stage thread."""
        for t in threads:
            t.join(timeout=timeout)

    # Delta baseline for ``kstats`` replies: under fork the worker's
    # COUNTERS inherits the parent's pre-spawn totals (see ``_serve``).
    from ...kernels import COUNTERS
    counters_baseline = COUNTERS.snapshot()
    conn.send(("ready", spec.index))
    for t in threads:
        t.start()
    try:
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "train":
                bufs["sample"].put((msg[1], msg[2]), timeout=timeout)
            elif tag == "apply":
                q_apply.put((msg[1], msg[2]), timeout=timeout)
            elif tag == "init":
                # Arrives before any shard is dealt; no work is in
                # flight, so the replica is safe to overwrite.
                replica.model.set_flat_params(msg[1])
            elif tag == "end":
                bufs["sample"].close()
            elif tag == "stats":
                drain()
                safe_send(("stats",
                           {stage: (b.total_puts, b.high_water,
                                    b.mean_occupancy)
                            for stage, b in bufs.items()}))
            elif tag == "params":
                drain()
                safe_send(("params", replica.model.get_flat_params()))
            elif tag == "kstats":
                drain()
                safe_send(("kstats",
                           COUNTERS.delta(counters_baseline)))
            elif tag == "wstats":
                drain()
                safe_send(("wstats", replica.wstats()))
            elif tag == "stop":
                return
            else:
                raise ProtocolError(f"unknown message tag {tag!r}")
    finally:
        for b in (*bufs.values(), q_apply):
            b.close()
        for t in threads:
            t.join(timeout=timeout)


def _setup_overlapped(store, spec: _WorkerSpec):
    replica, _ = _setup_worker_sampling(store, spec)
    replica.prefetch = store.manifest.prefetch
    if replica.prefetch is None:
        raise ProtocolError(
            "shared store carries no prefetch spec: the fused plane's "
            "workers need their stage-buffer capacity from the "
            "manifest")
    return replica, None


def _worker_main(conn, manifest, spec: _WorkerSpec) -> None:
    """One fused trainer replica (module-level: picklable under
    ``spawn``): worker-side sampling plus the overlapped serve loop."""
    _run_worker(conn, manifest, spec, _setup_overlapped,
                serve=_serve_overlapped)


# ---------------------------------------------------------------------------
# Parent-side backend
# ---------------------------------------------------------------------------

@dataclass
class ProcessPipelinedReport(ProcessSamplingReport):
    """A :class:`ProcessSamplingReport` plus the fused plane's overlap
    observability.

    ``stage_stats`` aggregates every worker's stage-buffer accounting
    (items through, high-water, mean occupancy — same shape as the
    pipelined plane's per-stage overlap report); ``depth_history`` is
    the adaptive look-ahead trajectory ``(iteration, depth)``;
    ``lookahead_history[i]`` records ``(in_flight, depth)`` at the
    moment iteration ``i`` was retired for synchronization — the
    bounded-queue audit trail: ``in_flight <= max_depth`` always
    (pinned by tests), though after an adaptive *shrink* ``in_flight``
    may transiently exceed the new ``depth`` while the window drains
    (shrinking never revokes dealt shards, exactly like
    ``PrefetchBuffer.resize``); ``dealt_sizes[i]`` is iteration
    ``i``'s per-trainer batch sizes *as dealt* — under look-ahead
    these lag DRM adjustments by the window size (the DRM-lag
    regression test keys off this).
    """

    stage_stats: dict[str, StageStats] = field(default_factory=dict)
    depth_history: list[tuple[int, int]] = field(default_factory=list)
    lookahead_history: list[tuple[int, int]] = \
        field(default_factory=list)
    dealt_sizes: list[tuple[int, ...]] = field(default_factory=list)
    prefetch_high_water: int = 0
    #: Per-stage model-vs-realized calibration report from the
    #: backend's :class:`~repro.runtime.resctl.OnlineEstimator`
    #: (correction factor, relative error, observation count) —
    #: populated on timing sessions under either ``depth_source``.
    calibration: dict[str, dict] = field(default_factory=dict)

    def overlap_summary(self) -> str:
        """One-line per-stage overlap report for benches/logs."""
        return summarize_overlap(self.stage_stats, self.depth_history)


class ProcessPipelinedBackend(ProcessSamplingBackend):
    """Worker processes that sample their own mini-batches *and*
    overlap the producer chain with training — the fused plane.

    Parameters
    ----------
    session:
        The shared runtime core. Timing-plane sessions drive the
        adaptive look-ahead from modelled stage times; functional-only
        sessions deal at a fixed depth.
    timeout_s / mp_context:
        As :class:`~repro.runtime.backends.process_pool.ProcessPoolBackend`.
    initial_depth:
        Look-ahead the dealer starts with (defaults to the session's
        ``prefetch_depth`` when two-stage prefetching is on, else 1 —
        lock-step dealing, matching the serialized ablation presets).
    max_depth:
        Hard cap the adaptive policy can never exceed; also sizes each
        worker's stage buffers (via the manifest's
        :class:`~repro.runtime.shm.SharedPrefetchSpec`), so a worker's
        receive loop can always enqueue a dealt shard without blocking
        the pipe. Defaults to 8 or the initial depth, whichever is
        larger — default construction is valid for any session; an
        explicitly-passed cap below the initial depth fails loudly.
    depth_source:
        What steers the adaptive look-ahead and the DRM engine on
        timing sessions: ``"realized"`` (the default) calibrates the
        analytic stage times against monitored wall clocks through the
        backend's :class:`~repro.runtime.resctl.OnlineEstimator`;
        ``"model"`` reproduces the purely-analytic PR7 trajectories
        bit for bit (the regression-pinned behavior).
    allocator:
        The :class:`~repro.runtime.resctl.NodeAllocator` arbitrating
        look-ahead depth across concurrent sessions (defaults to the
        process-global :data:`~repro.runtime.resctl.DEFAULT_ALLOCATOR`).
    """

    name = "process_pipelined"
    options_cls = ProcessOverlapOptions
    conformance_tier = "statistical"

    #: The fused plane keeps dealt batches in flight across the sync
    #: barrier, so a worker's next transfer genuinely overlaps the
    #: parent's gradient pull — the duplex derate its lock-step parent
    #: class switches off applies again here.
    overlaps_transfer = True

    def __init__(self, session, timeout_s: float = 120.0,
                 mp_context: str | None = None,
                 initial_depth: int | None = None,
                 max_depth: int | None = None,
                 depth_source: str | None = None,
                 allocator: NodeAllocator | None = None) -> None:
        super().__init__(session, timeout_s=timeout_s,
                         mp_context=mp_context)
        self.initial_depth, self.max_depth = resolve_depths(
            session, initial_depth, max_depth)
        self.depth_source = resolve_depth_source(depth_source)
        self.allocator = allocator if allocator is not None \
            else DEFAULT_ALLOCATOR
        # Persists across runs on the same backend instance, so a
        # second run seeds its first window from calibrated estimates
        # instead of the floor.
        self.estimator = OnlineEstimator(monitor=None)
        self._grant = None

    def run(self, iterations: int):
        """Register this run with the node allocator for the duration
        of the synchronized loop; the grant is released (budget
        returned to concurrent sessions) no matter how the run ends."""
        if iterations < 1:
            raise ProtocolError("iterations must be >= 1")
        self._grant = self.allocator.register(
            name=f"{self.name}:{self.session.dataset.name}",
            max_depth=self.max_depth)
        try:
            return super().run(iterations)
        finally:
            self._grant.release()
            self._grant = None

    def _depth_cap(self) -> int:
        """Live adaptive-depth cap: the configured ``max_depth``
        clamped by this run's current allocator share."""
        cap = self.max_depth
        if self._grant is not None and not self._grant.released:
            cap = min(cap, self._grant.depth_cap)
        return max(1, cap)

    # -- resctl hooks --------------------------------------------------
    def _timing_estimator(self):
        return self.estimator if self.session.has_timing else None

    def _timing_calibrate(self) -> bool:
        return self.depth_source == "realized"

    # -- subclass hooks ------------------------------------------------
    def _worker_entry(self):
        return _worker_main

    def _create_store(self):
        from ..shm import SharedFeatureStore, SharedPrefetchSpec
        return SharedFeatureStore.create(
            self.session.dataset,
            sampler_spec=self.session.shared_sampler_spec(),
            prefetch_spec=SharedPrefetchSpec(
                capacity=self.max_depth, timeout_s=self.timeout_s))

    def _make_report(self, iterations: int,
                     n: int) -> ProcessPipelinedReport:
        return ProcessPipelinedReport(iterations=iterations,
                                      num_workers=n,
                                      worker_targets=[[] for _ in
                                                      range(n)])

    # ------------------------------------------------------------------
    def _drive(self, iterations: int, conns, report, rows) -> None:
        """The look-ahead dealing loop.

        Deal shards for up to ``depth`` iterations ahead through the
        per-worker pipes, then retire the oldest in-flight iteration:
        collect its results, run the shared sync tail (all-reduce,
        broadcast, optimizer steps, timing/DRM — unchanged semantics),
        and let the modelled stage times resize the window. Finally
        close every worker's stream (``end``) and fold their stage
        accounting into the overlap report.
        """
        s = self.session
        n = s.num_trainers
        depth = seed_depth(s, self.initial_depth, self._depth_cap(),
                           self.depth_source, self.estimator)
        report.depth_history.append((0, depth))
        dealer = LookaheadDealer(s.work_source.iterate(iterations),
                                 depth)

        def deal(pairs) -> None:
            for it, planned in pairs:
                report.dealt_sizes.append(planned.batch_sizes)
                for idx in range(n):
                    targets = planned.assignments[idx]
                    if targets is not None:
                        report.trained_targets.append(targets)
                    # Idle iterations are dealt too (targets=None) so
                    # every worker's pipeline carries one item per
                    # iteration and applies stay strictly in order.
                    self._send(conns, idx, ("train", it, targets))

        deal(dealer.refill())
        while True:
            entry = dealer.retire()
            if entry is None:
                break
            report.lookahead_history.append(
                (dealer.in_flight + 1, dealer.depth))
            it, planned = entry
            stats_by_idx: dict[int, object] = {}
            losses: list[float] = []
            accs: list[float] = []
            busy = [idx for idx in range(n)
                    if planned.assignments[idx] is not None]
            self._collect(it, busy, conns, report, stats_by_idx,
                          losses, accs)
            for idx in range(n):
                if planned.assignments[idx] is None:
                    # Idle replica: zero gradients, weight zero in the
                    # all-reduce. Done at sync time (not deal time) so
                    # a look-ahead deal can never clobber gradients of
                    # an earlier, not-yet-reduced iteration.
                    s.trainers[idx].model.zero_grad()
            times = self._sync_tail(it, planned, conns, report, rows,
                                    stats_by_idx, losses, accs)
            if times is not None and s.sys_cfg.prefetch:
                want = adaptive_depth(times, cap=self._depth_cap())
                if want != dealer.depth:
                    dealer.set_depth(want)
                    report.depth_history.append((it + 1, want))
            deal(dealer.refill())

    def _finalize(self, conns, report) -> None:
        """Close every worker's stream and fold their stage accounting
        into the overlap report. Runs after ``wall_time_s`` is stamped
        (the :meth:`run` scaffolding), so the drain and the per-worker
        stats round trips never inflate the measured training time the
        wall-clock benches compare across backends."""
        for idx in range(len(conns)):
            self._send(conns, idx, ("end",))
        self._collect_stage_stats(conns, report)
        # Chain the base hook: one more round trip per worker to fold
        # the kernel-traffic counters into ``report.kernel_stats`` (the
        # stage threads have drained by now, so the snapshots are
        # final).
        super()._finalize(conns, report)
        if self.session.has_timing:
            report.calibration = self.estimator.summary()

    def _collect_stage_stats(self, conns, report) -> None:
        """Gather every worker's stage-buffer accounting and aggregate
        it into the per-stage overlap report (items summed, high-water
        maxed, occupancy averaged across workers)."""
        per_stage: dict[str, list[tuple]] = \
            {stage: [] for stage in WORKER_STAGES}
        for idx in range(len(conns)):
            self._send(conns, idx, ("stats",))
            msg = self._recv(conns, idx)
            tag, payload = msg
            if tag != "stats":
                raise WorkerError(
                    f"worker {idx} answered {tag!r} to a stats "
                    "request")
            for stage, row in payload.items():
                per_stage[stage].append(row)
        # No skip on empty: `fold_stage_stats` folds an empty entry
        # list to a zeroed StageStats (a zero-worker pool still yields
        # a well-formed report).
        for stage, entries in per_stage.items():
            report.stage_stats[stage] = fold_stage_stats(stage,
                                                         entries)
        if report.stage_stats:
            report.prefetch_high_water = max(
                st.high_water for st in report.stage_stats.values())
