"""Live multi-threaded execution backend (paper §VI-B, Listing 1).

Runs the same :class:`~repro.runtime.core.TrainingSession` the
virtual-time backend resolves sequentially, but on real Python threads
with condition-variable handshakes structured exactly like the paper's
pthread implementation:

* a producer thread plays Mini-batch Sampler + Feature Loader, filling
  bounded :class:`~repro.runtime.prefetch.PrefetchBuffer` queues (the
  two-stage prefetch look-ahead). The producer also drives the *timing
  plane* when the session has one: it draws per-trainer batches from the
  shared :class:`~repro.runtime.core.BatchPlan`, records modelled stage
  times from the realized statistics, and applies the DRM adjustment —
  in exactly the order the virtual-time backend does, so the split/DRM
  trajectory (and therefore every batch) is bit-identical across
  backends;
* one thread per GNN Trainer trains its replica, then increments the
  shared ``DONE`` counter under the mutex and signals the condition
  (Listing 1's ``Trainer_threads`` block);
* the synchronizer (the ``run`` caller's thread) waits for
  ``DONE == n``, performs the all-reduce, broadcasts, and waits for every
  trainer's ``ACK`` before releasing the next iteration (Listing 1's
  ``Synchronizer_thread`` block).

Every handshake is recorded in a :class:`ProtocolLog`; tests validate the
ordering invariants and that training results match the virtual-time
backend loss-for-loss.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ...errors import ProtocolError
from ...kernels import scoped_counters
from ...perfmodel.model import StageTimes, WorkloadSplit
from ...sim.trace import Timeline
from ..prefetch import PrefetchBuffer
from ..protocol import ProtocolLog, Signal
from ..resctl import fold_worker_realized
from .base import ExecutionBackend
from .options import ThreadedOptions


@dataclass
class ExecutorReport:
    """Outcome of a threaded run.

    ``wall_time_s`` is real elapsed time; when the session carries a
    timing plane the report additionally holds the virtual-time
    bookkeeping (stage history, DRM split trajectory, pipeline timeline)
    so threaded runs are comparable to the virtual-time plane.
    ``kernel_stats`` is the run's delta of the backend's
    session-scoped kernel-traffic counters (``backend.counters``, fed
    via :func:`repro.kernels.scoped_counters`) — bytes gathered and
    quantized payload bytes for this run's feature loads only.
    """

    iterations: int
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    wall_time_s: float = 0.0
    protocol_log: ProtocolLog = field(default_factory=ProtocolLog)
    replicas_consistent: bool = False
    prefetch_high_water: int = 0
    stage_history: list[StageTimes] = field(default_factory=list)
    split_history: list[WorkloadSplit] = field(default_factory=list)
    total_edges: float = 0.0
    virtual_time_s: float = 0.0
    timeline: Timeline = field(default_factory=Timeline)
    kernel_stats: dict[str, int] = field(default_factory=dict)


class ThreadedBackend(ExecutionBackend):
    """Run hybrid synchronous-SGD training on real threads.

    Parameters
    ----------
    session:
        The shared runtime core. Platform sessions bring the hybrid
        CPU+accelerator split, DRM, transfer quantization and the
        modelled timing plane onto the threads; platform-less sessions
        run the functional protocol only.
    prefetch_depth:
        Mini-batches of look-ahead per trainer.
    timeout_s:
        Watchdog for every blocking wait — a protocol deadlock fails fast
        instead of hanging the suite.
    """

    name = "threaded"
    options_cls = ThreadedOptions

    def __init__(self, session, prefetch_depth: int = 2,
                 timeout_s: float = 60.0) -> None:
        super().__init__(session)
        if prefetch_depth < 1:
            raise ProtocolError("prefetch depth must be >= 1")
        self.prefetch_depth = prefetch_depth
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def run_epoch(self, max_iterations: int | None = None
                  ) -> ExecutorReport:
        """Execute one epoch (or ``max_iterations``, whichever is less)."""
        iters = self.session.iterations_per_epoch()
        if max_iterations is not None:
            iters = min(iters, max_iterations)
        return self.run(iters)

    def run(self, iterations: int) -> ExecutorReport:
        """Execute ``iterations`` synchronized iterations.

        Iterations follow the shared batch plan: each epoch is one
        permutation of the train set, consumed cursor-wise; when
        ``iterations`` exceeds an epoch the plan rolls into the next
        permutation (so long runs still visit every train vertex once
        per epoch).
        """
        if iterations < 1:
            raise ProtocolError("iterations must be >= 1")
        s = self.session
        report = ExecutorReport(iterations=iterations)
        log = report.protocol_log
        n = s.num_trainers
        rows: list[list[float]] = []

        mutex = threading.Lock()
        cond = threading.Condition(mutex)
        state = {
            "done": 0,           # Listing 1's DONE counter
            "acks": 0,
            "sync_iter": -1,     # last iteration whose all-reduce finished
            "release_iter": 0,   # iteration trainers may work on
            "results": {},       # (iteration, trainer) -> (loss, acc, size)
            "error": None,
        }
        buffers = [PrefetchBuffer(self.prefetch_depth) for _ in range(n)]

        # ---- producer: Batch Plan + Sampler + Feature Loader ----
        # Also the timing plane's home: stage times are a pure function
        # of the realized batch statistics and the current split, and
        # DRM must see iteration i's times before iteration i+1's quotas
        # are read — the producer is the only thread that touches the
        # plan, so ordering matches the virtual-time backend exactly.
        def produce_iteration(it: int, planned) -> None:
            stats_cpu = None
            stats_accel: list = []
            edges_iter = 0.0
            per_trainer: list[tuple[str, dict]] = []
            # Hand each trainer's item over as soon as it is ready so
            # trainer 0 can start while trainers 1..n-1 still load.
            for idx, trainer in enumerate(s.trainers):
                targets = planned.assignments[idx]
                if targets is None:
                    if trainer.kind == "accel":
                        stats_accel.append(None)
                    buffers[idx].put((it, None, None, None),
                                     timeout=self.timeout_s)
                    continue
                t0 = time.perf_counter()
                mb = s.sampler.sample(targets)
                dt_sample = time.perf_counter() - t0
                st = mb.stats()
                edges_iter += st.total_edges
                if trainer.kind == "cpu":
                    stats_cpu = st
                else:
                    stats_accel.append(st)
                t0 = time.perf_counter()
                x0 = s.load_features(mb, trainer.kind)
                per_trainer.append((trainer.kind,
                                    {"sample": dt_sample,
                                     "load": time.perf_counter() - t0}))
                buffers[idx].put((it, mb, x0, s.labels_for(mb)),
                                 timeout=self.timeout_s)
            report.total_edges += edges_iter
            # Feed the realized sample/load wall clocks to the stage
            # monitor (observability only — never the timing step,
            # which stays bit-identical to the virtual reference).
            self.monitor.observe_times(fold_worker_realized(per_trainer))
            if s.has_timing:
                times, row, split = s.timing_step(stats_cpu,
                                                  stats_accel, it)
                rows.append(row)
                report.stage_history.append(times)
                report.split_history.append(split)

        def producer() -> None:
            try:
                for it, planned in s.work_source.iterate(iterations):
                    produce_iteration(it, planned)
                for b in buffers:
                    b.close()
            except BaseException as exc:  # propagate to the main thread
                with cond:
                    if state["error"] is None:
                        state["error"] = exc
                    cond.notify_all()
                for b in buffers:
                    b.close()

        # ---- trainer threads (Listing 1, Trainer_threads) ----
        def trainer_loop(idx: int) -> None:
            try:
                node = s.trainers[idx]
                opt = s.optimizers[idx]
                while True:
                    item = buffers[idx].get(timeout=self.timeout_s)
                    if item is None:
                        return
                    it, mb, x0, labels = item
                    with cond:
                        while state["release_iter"] < it and \
                                state["error"] is None:
                            if not cond.wait(self.timeout_s):
                                raise ProtocolError(
                                    f"trainer{idx} release wait timeout")
                        if state["error"] is not None:
                            return
                    if mb is None:
                        # Idle this iteration: participate in the
                        # all-reduce with zero gradients and weight zero.
                        node.model.zero_grad()
                        result = (None, None, 0)
                    else:
                        t0 = time.perf_counter()
                        rep = node.train_minibatch(mb, x0, labels,
                                                   s.degrees)
                        self.monitor.observe(
                            "train_cpu" if node.kind == "cpu"
                            else "train_accel",
                            time.perf_counter() - t0)
                        result = (rep.loss, rep.accuracy,
                                  rep.batch_targets)
                    with cond:
                        state["results"][(it, idx)] = result
                        state["done"] += 1
                        log.record(it, Signal.DONE, node.name)
                        cond.notify_all()
                        # Wait for the synchronizer's broadcast.
                        while state["sync_iter"] < it and \
                                state["error"] is None:
                            if not cond.wait(self.timeout_s):
                                raise ProtocolError(
                                    f"trainer{idx} sync wait timeout")
                        if state["error"] is not None:
                            return
                    opt.step()
                    with cond:
                        state["acks"] += 1
                        log.record(it, Signal.ACK, node.name)
                        cond.notify_all()
            except BaseException as exc:
                with cond:
                    if state["error"] is None:
                        state["error"] = exc
                    cond.notify_all()

        def scoped(fn):
            # Enlist each worker thread into the session-scoped counter
            # handle so kernel_stats counts only this run's dispatches.
            def run(*args):
                with scoped_counters(self.counters):
                    fn(*args)
            return run

        threads = [threading.Thread(target=scoped(producer), daemon=True,
                                    name="producer")]
        threads += [threading.Thread(target=scoped(trainer_loop),
                                     args=(i,),
                                     daemon=True, name=f"trainer{i}")
                    for i in range(n)]
        counters_before = self.counters.snapshot()
        start = time.perf_counter()
        for t in threads:
            t.start()

        # ---- synchronizer loop (Listing 1, Synchronizer_thread) ----
        try:
            for it in range(iterations):
                with cond:
                    while state["done"] < n and state["error"] is None:
                        if not cond.wait(self.timeout_s):
                            raise ProtocolError(
                                f"synchronizer wait timeout at {it}")
                    if state["error"] is not None:
                        raise state["error"]
                    sizes = [state["results"][(it, i)][2]
                             for i in range(n)]
                    t0 = time.perf_counter()
                    s.synchronizer.all_reduce(sizes, it)
                    self.monitor.observe("sync",
                                         time.perf_counter() - t0)
                    log.record(it, Signal.SYNC, "synchronizer")
                    state["done"] = 0
                    state["sync_iter"] = it
                    cond.notify_all()
                    while state["acks"] < n and state["error"] is None:
                        if not cond.wait(self.timeout_s):
                            raise ProtocolError(
                                f"ACK wait timeout at {it}")
                    if state["error"] is not None:
                        raise state["error"]
                    state["acks"] = 0
                    state["release_iter"] = it + 1
                    log.record(it, Signal.ITER_START, "runtime")
                    cond.notify_all()
                losses = [state["results"][(it, i)][0] for i in range(n)
                          if state["results"][(it, i)][0] is not None]
                accs = [state["results"][(it, i)][1] for i in range(n)
                        if state["results"][(it, i)][1] is not None]
                report.losses.append(float(np.mean(losses)))
                report.accuracies.append(float(np.mean(accs)))
        finally:
            for b in buffers:
                b.close()
            for t in threads:
                t.join(timeout=self.timeout_s)

        report.wall_time_s = time.perf_counter() - start
        report.kernel_stats = self.counters.delta(counters_before)
        report.replicas_consistent = \
            s.synchronizer.replicas_consistent()
        report.prefetch_high_water = max(b.high_water for b in buffers)
        if s.has_timing and rows:
            timeline = s.make_pipeline().run(rows)
            report.timeline = timeline
            report.virtual_time_s = timeline.makespan
        return report
