"""The execution-backend protocol.

An :class:`ExecutionBackend` realizes the training protocol described by
a :class:`~repro.runtime.core.TrainingSession` on some execution
substrate. Backends never construct samplers, replicas, synchronizers or
optimizers — the session owns construction; backends own *execution
strategy* only. That is the whole point of the split: adding a new way to
run training (process pool, async pipeline, multi-node sharding) means
implementing this interface, not forking the runtime.

Contract every backend must honor (so results are backend-independent):

* batches come from the session's :class:`~repro.runtime.core.BatchPlan`
  — one permutation per epoch, per-trainer quota slices in trainer order;
* mini-batches are sampled through ``session.sampler`` in plan order
  (the sampler's RNG stream is part of the reproducibility contract);
* features load through ``session.load_features`` (which applies the
  transfer-quantization policy for accelerator trainers);
* gradients synchronize through ``session.synchronizer`` with batch-size
  weights, after which *every* optimizer steps (idle trainers receive
  the averaged gradients too, keeping replicas consistent);
* DRM (when enabled) sees iteration ``i``'s realized stage times before
  iteration ``i + 1``'s quotas are read.
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar

from ..core import TrainingSession


class ExecutionBackend(abc.ABC):
    """Base class for pluggable execution strategies.

    Parameters
    ----------
    session:
        The shared runtime core this backend executes.
    """

    #: Registry key; subclasses override.
    name: ClassVar[str] = ""

    def __init__(self, session: TrainingSession) -> None:
        self.session = session

    @abc.abstractmethod
    def run_epoch(self, max_iterations: int | None = None) -> Any:
        """Execute (up to) one epoch of functional training.

        Returns a backend-specific report; all reports expose at least
        ``iterations`` and per-iteration ``losses``.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} over {self.session.dataset.name}>"
