"""The execution-backend protocol.

An :class:`ExecutionBackend` realizes the training protocol described by
a :class:`~repro.runtime.core.TrainingSession` on some execution
substrate. Backends never construct samplers, replicas, synchronizers or
optimizers — the session owns construction; backends own *execution
strategy* only. That is the whole point of the split: adding a new way to
run training (process pool, async pipeline, multi-node sharding) means
implementing this interface, not forking the runtime.

Contract every backend must honor (so results are backend-independent):

* batches come from the session's :class:`~repro.runtime.core.BatchPlan`
  — one permutation per epoch, per-trainer quota slices in trainer order;
* mini-batches are sampled through ``session.sampler`` in plan order
  (the sampler's RNG stream is part of the reproducibility contract);
* features load through ``session.load_features`` (which applies the
  transfer-quantization policy for accelerator trainers);
* gradients synchronize through ``session.synchronizer`` with batch-size
  weights, after which *every* optimizer steps (idle trainers receive
  the averaged gradients too, keeping replicas consistent);
* DRM (when enabled) sees iteration ``i``'s realized stage times before
  iteration ``i + 1``'s quotas are read — **unless** the backend
  declares the ``statistical`` conformance tier, which relaxes exactly
  this clause (and therefore bit-parity) in exchange for overlap.

Each backend declares which tier of the conformance kit it targets via
:attr:`ExecutionBackend.conformance_tier`:

* ``"strict"`` — lock-step execution, held to **bit-identical** parity
  with the virtual reference (losses, DRM trajectory, parameters);
* ``"statistical"`` — stages overlap and stochastic draws may interleave
  across stage threads, so the kit instead asserts exact epoch coverage,
  work conservation, DRM-trajectory shape, and tolerance-based loss /
  parameter closeness.

The kit (``tests/integration/backend_conformance.py``) reads the flag
off the registered class, so third-party backends opt into the right
matrix by setting one class attribute.
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar

from ...kernels import KernelCounters
from ..core import TrainingSession
from ..resctl import StageMonitor
from .options import BackendOptions


class ExecutionBackend(abc.ABC):
    """Base class for pluggable execution strategies.

    Parameters
    ----------
    session:
        The shared runtime core this backend executes.
    """

    #: Registry key; subclasses override.
    name: ClassVar[str] = ""

    #: The typed construction-knob declaration
    #: (:mod:`~repro.runtime.backends.options`). ``register_backend``
    #: validates every field against the constructor signature;
    #: ``build_backend(name, session, **knobs)`` resolves user kwargs
    #: through it with unknown-option errors naming the backend.
    options_cls: ClassVar[type[BackendOptions]] = BackendOptions

    #: Which conformance tier this backend targets: ``"strict"``
    #: (bit-identical to the virtual reference — the default) or
    #: ``"statistical"`` (overlapped execution; the kit asserts
    #: coverage, conservation and closeness instead of bit-parity).
    conformance_tier: ClassVar[str] = "strict"

    #: Does this backend overlap the next iteration's feature transfer
    #: with the current iteration's gradient pull on the PCIe link?
    #: Gates the timing plane's duplex-contention derate
    #: (:meth:`TrainingSession.duration_row`). ``True`` by default:
    #: the virtual reference models the overlapped pipeline whenever
    #: prefetching is configured, and the strict planes must price
    #: their rows identically to it by contract. A lock-step
    #: statistical plane whose transfer strictly precedes the pull
    #: (the worker-sampling plane) overrides this to ``False``.
    overlaps_transfer: ClassVar[bool] = True

    def __init__(self, session: TrainingSession) -> None:
        self.session = session
        #: Realized per-stage wall-time monitor (resctl stage 1) —
        #: an explicit **session-scoped handle**: every live plane
        #: feeds its own; overlapped planes additionally calibrate
        #: from it through their estimator. Two concurrent sessions
        #: (train + serve, or two trainings) never share one.
        self.monitor = StageMonitor()
        #: Session-scoped kernel-traffic handle: the in-process planes
        #: enlist their run/stage threads into it
        #: (:func:`repro.kernels.scoped_counters`), so a report's
        #: ``kernel_stats`` counts only this backend's dispatches even
        #: when other sessions run concurrently in the same process.
        self.counters = KernelCounters()

    @abc.abstractmethod
    def run_epoch(self, max_iterations: int | None = None) -> Any:
        """Execute (up to) one epoch of functional training.

        Returns a backend-specific report; all reports expose at least
        ``iterations`` and per-iteration ``losses``.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} over {self.session.dataset.name}>"
