"""Shared-memory feature store for multi-process execution backends.

The process-pool backend (DistDGL-style: Zheng et al., "Distributed
Hybrid CPU and GPU Training for Graph Neural Networks on Billion-Scale
Graphs") runs trainer replicas in worker *processes*. Re-pickling the
feature matrix per mini-batch would immediately re-create the PCIe-style
traffic bottleneck the paper's feature loader avoids, so the dataset's
big read-only arrays — node features, labels, and the CSR topology —
are placed once in a single :mod:`multiprocessing.shared_memory` block
and every worker maps them zero-copy.

Layout: one segment, all arrays at 64-byte-aligned offsets (one segment
means one thing to unlink, and cache-line alignment keeps NumPy gathers
on the natural fast path). A picklable :class:`SharedStoreManifest`
carries ``(segment name, per-array dtype/shape/offset)`` to the workers,
which re-materialize NumPy views with :meth:`SharedFeatureStore.attach`.

Lifetime / cleanup contract
---------------------------
* The **creator** (the backend's parent process) owns the segment: it is
  the only party that may :meth:`unlink`. ``close()`` + ``unlink()`` run
  in the backend's ``finally`` block, and a ``weakref.finalize`` guard
  unlinks on garbage collection as a last resort, so no segment outlives
  the run even on error paths.
* **Workers** attach by name and must only :meth:`close`. Workers
  spawned (or forked) by the creator share its ``resource_tracker``
  process, whose name cache is a set — the attach-side re-registration
  dedupes, and the owner's ``unlink`` clears the single entry. (The
  bpo-39959 double-unlink problem only affects *unrelated* processes
  attaching by name, which this store does not support.)
* Array views pin the mapping: :meth:`close` drops the store's views
  first; callers must not hold onto ``store.features`` etc. past close.
"""

from __future__ import annotations

import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import ProtocolError

#: Alignment for every array inside the segment (one x86 cache line).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SharedArraySpec:
    """Placement of one array inside the shared segment (picklable)."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape,
                                                               dtype=np.int64)))


@dataclass(frozen=True)
class SharedSamplerSpec:
    """Everything a worker needs to rebuild the session's sampler family
    against the shared CSR topology (picklable).

    ``train_cfg`` carries the whole training config (sampler family
    name, fanouts, layer count, base seed) so third-party samplers
    registered via :func:`repro.sampling.register_sampler` rebuild from
    whatever config fields their builder reads.
    :func:`repro.sampling.build_worker_sampler` consumes this spec plus
    a worker index and derives that worker's independent RNG stream.
    """

    train_cfg: "object"            # repro.config.TrainingConfig
    feature_dim: int


@dataclass(frozen=True)
class SharedShardSpec:
    """Partition metadata of a shard-sliced store (picklable).

    When the creating backend trains over a vertex partition (the
    sharded plane), ``features`` and ``labels`` are stored in
    **shard-major row order**: shard ``k``'s rows form one contiguous
    slice, so a worker's local gathers stay inside its own slice and
    any other row is a remote fetch it must account for. The
    translation arrays travel in the segment itself (``parts``,
    ``shard_row``, ``shard_order``, ``shard_offsets`` — see
    :class:`~repro.graph.shard_map.ShardMap`); this spec carries what
    a worker cannot derive from them: the shard count (trailing empty
    shards are representable), how the map was produced, and the
    per-worker remote-cache capacity.
    """

    num_shards: int
    partitioner: str | None = None
    partition_seed: int | None = None
    remote_cache_rows: int = 0


@dataclass(frozen=True)
class SharedPrefetchSpec:
    """Worker-local pipeline parameters for overlapped process planes
    (picklable).

    The fused process × pipeline backend overlaps each worker's local
    sample → gather → transfer chain with its train+sync stage over
    :class:`~repro.runtime.prefetch.PrefetchBuffer` queues. ``capacity``
    sizes those stage buffers — it must be at least the parent's
    maximum look-ahead depth, so the worker's receive loop can always
    enqueue a dealt shard without blocking the pipe (a blocked receive
    loop could never see the ``apply`` that would drain it — the
    classic pipeline deadlock). ``timeout_s`` is the stage-handoff
    watchdog, mirroring the parent's cross-process watchdog.
    """

    capacity: int
    timeout_s: float


@dataclass(frozen=True)
class SharedStoreManifest:
    """Everything a worker needs to map the store (picklable).

    ``sampler`` is optional sampler state: when the creating backend
    runs worker-side neighbor sampling, the manifest carries the
    :class:`SharedSamplerSpec` the workers rebuild their samplers from
    (the topology itself travels in the segment as ``indptr`` /
    ``indices`` / ``train_ids``). ``prefetch`` is optional worker-local
    pipeline state: overlapped process planes carry a
    :class:`SharedPrefetchSpec` sizing each worker's stage buffers.
    ``shard`` is optional partition state: a shard-sliced store (the
    sharded plane) carries a :class:`SharedShardSpec` and stores
    features/labels in shard-major order alongside the translation
    arrays.
    """

    segment: str
    arrays: tuple[SharedArraySpec, ...]
    sampler: SharedSamplerSpec | None = None
    prefetch: SharedPrefetchSpec | None = None
    shard: SharedShardSpec | None = None

    @property
    def total_bytes(self) -> int:
        last = self.arrays[-1]
        return last.offset + last.nbytes


class SharedFeatureStore:
    """Dataset-sized read-only arrays in one shared-memory segment.

    Construct with :meth:`create` (parent / owner) or :meth:`attach`
    (worker). Usable as a context manager: ``__exit__`` closes, and
    additionally unlinks when this store is the owner.
    """

    #: Segment-name prefix; the teardown tests scan /dev/shm for it.
    NAME_PREFIX = "repro_shm_"

    def __init__(self, shm: shared_memory.SharedMemory,
                 manifest: SharedStoreManifest, owner: bool) -> None:
        self._shm = shm
        self.manifest = manifest
        self.owner = owner
        self._views: dict[str, np.ndarray] = {
            spec.key: np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                                 buffer=shm.buf, offset=spec.offset)
            for spec in manifest.arrays
        }
        self._closed = False
        # Last-resort cleanup if an error path skips close()/unlink().
        self._finalizer = weakref.finalize(
            self, _finalize_store, shm, owner)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, dataset,
               sampler_spec: SharedSamplerSpec | None = None,
               prefetch_spec: SharedPrefetchSpec | None = None,
               shard_map=None,
               shard_spec: SharedShardSpec | None = None
               ) -> "SharedFeatureStore":
        """Copy ``dataset``'s big arrays into a fresh shared segment.

        Shares ``features``, ``labels``, the CSR topology
        (``indptr``/``indices``) and ``train_ids`` — everything a
        worker needs to gather inputs, evaluate the models' degree
        terms, *and* (with a ``sampler_spec``) rebuild the session's
        sampler family locally, without touching the parent's address
        space. A ``prefetch_spec`` additionally sizes the worker-local
        stage buffers of overlapped process planes.

        With a ``shard_map`` (:class:`~repro.graph.shard_map.ShardMap`)
        the store becomes **shard-sliced**: features and labels are
        written in shard-major row order (shard ``k``'s rows form the
        contiguous slice ``offsets[k]:offsets[k+1]``) and the
        translation arrays (``parts``, ``shard_row``, ``shard_order``,
        ``shard_offsets``) travel in the segment; the CSR topology and
        ``train_ids`` stay globally indexed (the sampler and the
        models' degree terms speak global ids). ``shard_spec`` is the
        accompanying :class:`SharedShardSpec` metadata (defaults to a
        bare spec naming only the shard count).
        """
        features = np.ascontiguousarray(dataset.features)
        labels = np.ascontiguousarray(dataset.labels)
        arrays = {
            "features": features,
            "labels": labels,
            "indptr": np.ascontiguousarray(dataset.graph.indptr),
            "indices": np.ascontiguousarray(dataset.graph.indices),
            "train_ids": np.ascontiguousarray(dataset.train_ids),
        }
        if shard_map is not None:
            arrays["features"] = np.ascontiguousarray(
                features[shard_map.order])
            arrays["labels"] = np.ascontiguousarray(
                labels[shard_map.order])
            arrays["parts"] = np.ascontiguousarray(shard_map.parts)
            arrays["shard_row"] = np.ascontiguousarray(
                shard_map.shard_row)
            arrays["shard_order"] = np.ascontiguousarray(
                shard_map.order)
            arrays["shard_offsets"] = np.ascontiguousarray(
                shard_map.offsets)
            if shard_spec is None:
                shard_spec = SharedShardSpec(
                    num_shards=shard_map.num_shards)
        elif shard_spec is not None:
            raise ProtocolError(
                "shard_spec without a shard_map: the store cannot "
                "slice features it has no partition for")
        specs: list[SharedArraySpec] = []
        offset = 0
        for key, arr in arrays.items():
            offset = _aligned(offset)
            specs.append(SharedArraySpec(key=key, dtype=arr.dtype.str,
                                         shape=tuple(arr.shape),
                                         offset=offset))
            offset += arr.nbytes
        name = f"{cls.NAME_PREFIX}{secrets.token_hex(8)}"
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(1, offset))
        manifest = SharedStoreManifest(segment=shm.name,
                                       arrays=tuple(specs),
                                       sampler=sampler_spec,
                                       prefetch=prefetch_spec,
                                       shard=shard_spec)
        store = cls(shm, manifest, owner=True)
        for spec in specs:
            store._views[spec.key][...] = arrays[spec.key]
        return store

    @classmethod
    def attach(cls, manifest: SharedStoreManifest) -> "SharedFeatureStore":
        """Map an existing store from its manifest (worker side)."""
        shm = shared_memory.SharedMemory(name=manifest.segment)
        return cls(shm, manifest, owner=False)

    # ------------------------------------------------------------------
    # Array access
    # ------------------------------------------------------------------
    def _view(self, key: str) -> np.ndarray:
        if self._closed:
            raise ProtocolError("shared feature store is closed")
        return self._views[key]

    @property
    def features(self) -> np.ndarray:
        return self._view("features")

    @property
    def labels(self) -> np.ndarray:
        return self._view("labels")

    @property
    def indptr(self) -> np.ndarray:
        return self._view("indptr")

    @property
    def indices(self) -> np.ndarray:
        return self._view("indices")

    @property
    def train_ids(self) -> np.ndarray:
        return self._view("train_ids")

    @property
    def is_sharded(self) -> bool:
        """Whether this store was created with a shard layout."""
        return self.manifest.shard is not None

    def shard_map(self):
        """The store's :class:`~repro.graph.shard_map.ShardMap`,
        rebuilt zero-copy from the segment's translation arrays
        (worker side). The returned map's arrays view the segment —
        drop it before :meth:`close`, like any other view."""
        from ..graph.shard_map import ShardMap
        if not self.is_sharded:
            raise ProtocolError("store was created without a shard map")
        return ShardMap(parts=self._view("parts"),
                        num_shards=self.manifest.shard.num_shards,
                        order=self._view("shard_order"),
                        shard_row=self._view("shard_row"),
                        offsets=self._view("shard_offsets"))

    @property
    def degrees(self) -> np.ndarray:
        """Out-degrees derived from the shared CSR (a private copy —
        safe to hold past :meth:`close`)."""
        return np.diff(self._view("indptr"))

    def csr_graph(self):
        """The shared topology as a :class:`~repro.graph.csr.CSRGraph`.

        Zero-copy: the graph's ``indptr``/``indices`` are views into
        the segment (already int64 and contiguous, so ``CSRGraph``'s
        normalization copies nothing). The returned graph pins the
        mapping — drop it before :meth:`close`, like any other view.
        """
        from ..graph.csr import CSRGraph
        return CSRGraph(self.indptr, self.indices)

    @property
    def nbytes(self) -> int:
        return self.manifest.total_bytes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap the segment (drops all views). Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment. Owner only; idempotent."""
        if not self.owner:
            raise ProtocolError(
                "only the creating process may unlink the store")
        self._finalizer.detach()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already gone (double teardown)
            pass

    def __enter__(self) -> "SharedFeatureStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.owner:
            self.unlink()


def _finalize_store(shm: shared_memory.SharedMemory, owner: bool) -> None:
    """GC-time guard: never leak a segment past the owning store."""
    try:  # pragma: no cover - defensive
        shm.close()
    except Exception:
        pass
    if owner:
        try:
            shm.unlink()
        except Exception:
            pass
