"""Configuration objects shared across the library.

Two configuration layers exist:

* :class:`TrainingConfig` — the GNN training algorithm parameters (model,
  fanouts, mini-batch size, learning rate, ...). These mirror the paper's
  §VI-A2 setup: two-layer models, hidden dim 256, mini-batch 1024, neighbor
  fanouts (25, 10).
* :class:`SystemConfig` — HyScale-GNN system feature flags used by the
  runtime and by the Fig. 11 ablation: hybrid execution, DRM, and two-stage
  feature prefetching (TFP).

Validation is eager: constructing an invalid config raises
:class:`repro.errors.ConfigError` immediately rather than failing deep inside
the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .errors import ConfigError

#: Feature element size in bytes (single-precision float, paper §V).
S_FEAT_BYTES = 4



@dataclass(frozen=True)
class TrainingConfig:
    """Algorithmic parameters of a mini-batch GNN training run.

    Attributes
    ----------
    model:
        ``"gcn"`` or ``"sage"`` — the two models evaluated in the paper.
    minibatch_size:
        Number of target vertices per mini-batch *per trainer* (paper: 1024).
    fanouts:
        Neighbor-sampling sizes per hop, target-side first (paper: (25, 10)
        means 25 neighbors at the first hop from targets, 10 at the second).
    hidden_dim:
        Hidden feature length f^1 (paper: 256).
    learning_rate:
        SGD step size.
    epochs:
        Number of passes over the training vertex set.
    seed:
        Base RNG seed; all randomness in the library derives from it.
    sampler:
        Mini-batch sampler family — any key of
        ``repro.sampling.SAMPLER_REGISTRY`` (paper §III-A: "executing a
        sampling algorithm [2], [29]"). ``"neighbor"`` is the paper's
        GraphSAGE sampler; ``"saint-node"`` / ``"saint-edge"`` /
        ``"saint-rw"`` / ``"full"`` and families added via
        ``repro.sampling.register_sampler`` plug into the same runtime,
        so execution backends stay sampler-agnostic.
    """

    model: str = "sage"
    minibatch_size: int = 1024
    fanouts: tuple[int, ...] = (25, 10)
    hidden_dim: int = 256
    learning_rate: float = 0.01
    epochs: int = 1
    seed: int = 0
    sampler: str = "neighbor"

    def __post_init__(self) -> None:
        if self.model not in ("gcn", "sage"):
            raise ConfigError(f"unknown model {self.model!r}; "
                              "expected 'gcn' or 'sage'")
        # Validate against the live registry (single source of truth —
        # built-ins and register_sampler() additions alike). Imported
        # lazily: repro.sampling depends on this module.
        from .sampling import SAMPLER_REGISTRY
        if self.sampler not in SAMPLER_REGISTRY:
            raise ConfigError(f"unknown sampler {self.sampler!r}; "
                              f"expected one of "
                              f"{sorted(SAMPLER_REGISTRY)}")
        if self.minibatch_size <= 0:
            raise ConfigError("minibatch_size must be positive")
        if len(self.fanouts) == 0:
            raise ConfigError("fanouts must contain at least one hop")
        if any(f <= 0 for f in self.fanouts):
            raise ConfigError("every fanout must be positive")
        if self.hidden_dim <= 0:
            raise ConfigError("hidden_dim must be positive")
        if not (0.0 < self.learning_rate < 1e3):
            raise ConfigError("learning_rate out of range")
        if self.epochs <= 0:
            raise ConfigError("epochs must be positive")

    @property
    def num_layers(self) -> int:
        """Number of GNN layers L (== number of sampling hops)."""
        return len(self.fanouts)

    def with_updates(self, **kwargs) -> "TrainingConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class SystemConfig:
    """HyScale-GNN system feature flags (the Fig. 11 ablation axes).

    Attributes
    ----------
    hybrid:
        Use the CPU as a trainer alongside the accelerators. ``False``
        reproduces the "Baseline" bar of Fig. 11 (CPU only samples/loads).
    drm:
        Enable the Dynamic Resource Management engine (paper Algorithm 1).
        Requires ``hybrid``.
    prefetch:
        Enable Two-stage Feature Prefetching (paper §IV-B). When off, the
        four stages of an iteration execute back-to-back (serialized).
    prefetch_depth:
        Mini-batches of look-ahead per accelerator (paper Fig. 7 shows 2:
        one being transferred, one being loaded).
    drm_work_step:
        Fraction of a trainer's mini-batch quota moved by one
        ``balance_work`` call.
    drm_thread_step:
        Number of CPU threads moved by one ``balance_thread`` call.
    transfer_precision:
        Feature precision on the PCIe link: ``"fp32"`` (paper default),
        ``"fp16"`` or ``"int8"`` — the paper's §VIII future-work
        quantization extension (see :mod:`repro.runtime.quantize`).
    """

    hybrid: bool = True
    drm: bool = True
    prefetch: bool = True
    prefetch_depth: int = 2
    drm_work_step: float = 0.125
    drm_thread_step: int = 2
    transfer_precision: str = "fp32"

    def __post_init__(self) -> None:
        if self.drm and not self.hybrid:
            raise ConfigError("DRM requires hybrid training "
                              "(there is no workload split to balance)")
        if self.prefetch_depth < 1:
            raise ConfigError("prefetch_depth must be >= 1")
        if not (0.0 < self.drm_work_step <= 0.5):
            raise ConfigError("drm_work_step must be in (0, 0.5]")
        if self.drm_thread_step < 1:
            raise ConfigError("drm_thread_step must be >= 1")
        if self.transfer_precision not in ("fp32", "fp16", "int8"):
            raise ConfigError(
                f"unknown transfer_precision "
                f"{self.transfer_precision!r}")

    def with_updates(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: The four ablation presets of paper Fig. 11, in paper order.
ABLATION_PRESETS: dict[str, SystemConfig] = {
    "baseline": SystemConfig(hybrid=False, drm=False, prefetch=False),
    "hybrid_static": SystemConfig(hybrid=True, drm=False, prefetch=False),
    "hybrid_drm": SystemConfig(hybrid=True, drm=True, prefetch=False),
    "hybrid_drm_tfp": SystemConfig(hybrid=True, drm=True, prefetch=True),
}


def layer_dims(input_dim: int, hidden_dim: int, output_dim: int,
               num_layers: int) -> tuple[int, ...]:
    """Feature lengths (f^0, ..., f^L) for an L-layer model.

    Matches Table III: f^0 = input features, f^L = classes, all intermediate
    layers share ``hidden_dim``.
    """
    if num_layers < 1:
        raise ConfigError("num_layers must be >= 1")
    if min(input_dim, hidden_dim, output_dim) <= 0:
        raise ConfigError("all dimensions must be positive")
    if num_layers == 1:
        return (input_dim, output_dim)
    return (input_dim,) + (hidden_dim,) * (num_layers - 1) + (output_dim,)
