"""Exception hierarchy for the HyScale-GNN reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures without masking programming errors elsewhere.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class GraphError(ReproError):
    """An operation on a graph structure was invalid."""


class SamplingError(ReproError):
    """A mini-batch sampler was misused or produced an invalid batch."""


class ShapeError(ReproError):
    """An array had an unexpected shape or dtype."""


class DeviceError(ReproError):
    """A hardware-model operation was invalid (capacity, topology, ...)."""


class CapacityError(DeviceError):
    """A memory allocation exceeded the modelled device capacity."""


class ProtocolError(ReproError):
    """The processor-accelerator training protocol was violated."""


class StageTimeoutError(ProtocolError):
    """A watchdog deadline expired on a blocking stage handoff.

    Raised by :class:`~repro.runtime.prefetch.PrefetchBuffer` waits and
    the process backends' cross-process receives. Subclasses
    :class:`ProtocolError` so existing handlers keep working, but CI
    logs can tell an *infrastructure* stall (wedged worker, starved
    pipeline) apart from a conformance failure.
    """


class WorkerError(ProtocolError):
    """A worker process died, crashed, or answered out of protocol.

    Carries the worker's traceback when one was received. Like
    :class:`StageTimeoutError`, this exists so infra failures are
    distinguishable from conformance failures in CI logs.
    """


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class ConvergenceError(ReproError):
    """Training failed to make expected progress (used by examples/benches)."""
