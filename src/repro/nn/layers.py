"""GNN layers under the aggregate-update paradigm (paper §II-A).

Each layer is a pair (aggregate, update):

* :class:`GCNLayer` — paper Eq. 3: symmetric-normalized sum over
  ``N(v) ∪ {v}`` followed by a dense update + ReLU.
* :class:`SAGELayer` — paper Eq. 4: ``concat(h_v, mean(h_u))`` followed by
  a dense update + ReLU.

Layers are minibatch-agnostic: an aggregator is built per
:class:`~repro.sampling.base.LayerBlock` via :meth:`build_aggregator` and
passed to ``forward``/``backward`` together with an explicit cache object,
so the same layer instance can be evaluated concurrently by multiple
trainers (the hybrid system runs several trainers per iteration on model
replicas, but tests also exercise shared instances).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..sampling.base import LayerBlock
from .activations import relu, relu_grad
from .aggregators import (
    SparseAggregator,
    add_self_edges,
    gcn_edge_weights,
    mean_edge_weights,
)
from .linear import Linear


@dataclass
class LayerCache:
    """Intermediates one forward pass must keep for its backward pass."""

    aggregator: SparseAggregator
    update_input: np.ndarray      # input of the dense update (a_v)
    pre_activation: np.ndarray    # z = a W + b (None-equivalent if linear)
    h_src: np.ndarray             # layer input features


class GCNLayer:
    """Graph Convolutional Network layer (paper Eq. 3).

    Parameters
    ----------
    in_dim / out_dim:
        Feature lengths f^{l-1} / f^l.
    rng:
        Initializer RNG.
    activation:
        Apply ReLU after the update (the final classification layer of a
        model sets this False so logits feed softmax directly).
    """

    aggregation = "gcn"

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator, activation: bool = True) -> None:
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.linear = Linear(in_dim, out_dim, rng)
        self.activation = activation

    # -- aggregation structure ------------------------------------------
    def build_aggregator(self, block: LayerBlock,
                         src_global_ids: np.ndarray,
                         dst_global_ids: np.ndarray,
                         global_degrees: np.ndarray | None
                         ) -> SparseAggregator:
        """Aggregator over ``N(v) ∪ {v}`` with 1/sqrt(D(u)D(v)) weights.

        ``global_degrees`` may be None, in which case uniform degrees are
        assumed (useful for gradcheck on toy blocks).
        """
        blk = add_self_edges(block)
        if global_degrees is None:
            weights = np.ones(blk.num_edges, dtype=np.float64)
        else:
            global_degrees = np.asarray(global_degrees)
            src_deg = global_degrees[src_global_ids[blk.src_local]]
            dst_deg = global_degrees[dst_global_ids[blk.dst_local]]
            weights = gcn_edge_weights(blk, src_deg, dst_deg)
        return SparseAggregator(blk, weights)

    # -- forward / backward ---------------------------------------------
    def forward(self, aggregator: SparseAggregator,
                h_src: np.ndarray) -> tuple[np.ndarray, LayerCache]:
        """Aggregate then update; returns (h_out, cache)."""
        a = aggregator.forward(h_src)
        z = self.linear.forward(a)
        h = relu(z) if self.activation else z
        return h, LayerCache(aggregator=aggregator, update_input=a,
                             pre_activation=z, h_src=h_src)

    def backward(self, cache: LayerCache,
                 grad_out: np.ndarray) -> np.ndarray:
        """Reverse-order ops (paper §II-B: backward = same ops reversed)."""
        dz = relu_grad(cache.pre_activation, grad_out) \
            if self.activation else grad_out
        da = self.linear.backward(cache.update_input, dz)
        return cache.aggregator.backward(da)

    def zero_grad(self) -> None:
        self.linear.zero_grad()

    @property
    def num_params(self) -> int:
        return self.linear.num_params


class SAGELayer:
    """GraphSAGE layer with mean aggregator (paper Eq. 4).

    The update consumes ``concat(h_v, mean_{u∈N(v)} h_u)``; the linear
    weight is therefore ``(2 * in_dim, out_dim)``.
    """

    aggregation = "mean"

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator, activation: bool = True) -> None:
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.linear = Linear(2 * in_dim, out_dim, rng)
        self.activation = activation

    def build_aggregator(self, block: LayerBlock,
                         src_global_ids: np.ndarray,
                         dst_global_ids: np.ndarray,
                         global_degrees: np.ndarray | None
                         ) -> SparseAggregator:
        """Neighbor-mean aggregator (global degrees are not needed)."""
        return SparseAggregator(block, mean_edge_weights(block))

    def forward(self, aggregator: SparseAggregator,
                h_src: np.ndarray) -> tuple[np.ndarray, LayerCache]:
        """Mean-aggregate, concat with self features, update."""
        num_dst = aggregator.block.num_dst
        if h_src.shape[0] < num_dst:
            raise ShapeError("source rows fewer than destinations")
        m = aggregator.forward(h_src)
        a = np.concatenate([h_src[:num_dst], m], axis=1)
        z = self.linear.forward(a)
        h = relu(z) if self.activation else z
        return h, LayerCache(aggregator=aggregator, update_input=a,
                             pre_activation=z, h_src=h_src)

    def backward(self, cache: LayerCache,
                 grad_out: np.ndarray) -> np.ndarray:
        dz = relu_grad(cache.pre_activation, grad_out) \
            if self.activation else grad_out
        da = self.linear.backward(cache.update_input, dz)
        d_self = da[:, :self.in_dim]
        d_mean = da[:, self.in_dim:]
        dh_src = cache.aggregator.backward(d_mean)
        num_dst = cache.aggregator.block.num_dst
        dh_src[:num_dst] += d_self
        return dh_src

    def zero_grad(self) -> None:
        self.linear.zero_grad()

    @property
    def num_params(self) -> int:
        return self.linear.num_params
