"""From-scratch NumPy GNN core (paper §II-A, aggregate-update paradigm).

Implements the two models the paper evaluates — GCN [23] and GraphSAGE [2]
— with exact manual backward passes. Forward/backward operate on the
:class:`~repro.sampling.base.MiniBatch` block structure, so the same model
code runs under neighbor sampling, GraphSAINT, or full-batch.

The optimizations HyScale-GNN applies never alter these semantics (paper
§IV); the equivalence tests in ``tests/integration`` rely on that.
"""

from .activations import relu, relu_grad
from .aggregators import (
    SparseAggregator,
    gcn_edge_weights,
    mean_edge_weights,
    segment_sum_aggregate,
)
from .init import xavier_uniform, zeros_init
from .linear import Linear
from .layers import GCNLayer, SAGELayer
from .loss import softmax_cross_entropy
from .models import GNNModel, build_model
from .optim import SGD, Adam, Optimizer
from .gradcheck import numeric_gradient, check_model_gradients

__all__ = [
    "relu",
    "relu_grad",
    "SparseAggregator",
    "gcn_edge_weights",
    "mean_edge_weights",
    "segment_sum_aggregate",
    "xavier_uniform",
    "zeros_init",
    "Linear",
    "GCNLayer",
    "SAGELayer",
    "softmax_cross_entropy",
    "GNNModel",
    "build_model",
    "Optimizer",
    "SGD",
    "Adam",
    "numeric_gradient",
    "check_model_gradients",
]
