"""Dense (feature-update) layer — the MLP of paper Eq. 2.

Forward: ``Y = X @ W + b``. The backward pass produces parameter gradients
and the input gradient. Parameters and gradients are exposed by name for
the optimizer and the gradient synchronizer.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .init import xavier_uniform, zeros_init


class Linear:
    """Affine transform with manual backward.

    Attributes
    ----------
    W, b:
        Parameters (float64; training numerics stay in double precision so
        equivalence tests are not dominated by rounding).
    dW, db:
        Gradients, populated by :meth:`backward`, zeroed by
        :meth:`zero_grad`.
    """

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ShapeError("dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.W = xavier_uniform((in_dim, out_dim), rng)
        self.b = zeros_init((out_dim,))
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute ``x @ W + b``; caller keeps ``x`` for backward."""
        if x.ndim != 2 or x.shape[1] != self.in_dim:
            raise ShapeError(
                f"expected (*, {self.in_dim}) input, got {x.shape}")
        return x @ self.W + self.b

    def backward(self, x: np.ndarray,
                 grad_out: np.ndarray) -> np.ndarray:
        """Accumulate dW/db and return the gradient w.r.t. ``x``."""
        if grad_out.shape != (x.shape[0], self.out_dim):
            raise ShapeError("grad_out shape mismatch")
        self.dW += x.T @ grad_out
        self.db += grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def zero_grad(self) -> None:
        """Reset accumulated gradients."""
        self.dW[...] = 0.0
        self.db[...] = 0.0

    @property
    def num_params(self) -> int:
        """Total scalar parameter count."""
        return self.W.size + self.b.size
