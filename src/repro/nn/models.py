"""GNN model container: layer stack + minibatch-driven forward/backward.

A :class:`GNNModel` owns L layers and evaluates them over a
:class:`~repro.sampling.base.MiniBatch`. Layer ``l`` consumes the features
of ``V^{l-1}`` and produces features for ``V^l``; because destination node
lists are prefixes of source lists, the output of layer ``l`` *is* the
input of layer ``l+1`` (no re-gather).

Gradient synchronization (the paper's Synchronizer) works on the flat
parameter/gradient vectors exposed by :meth:`get_flat_grads` /
:meth:`set_flat_params`; the layout is deterministic (layer order, W then
b), so replicas built from the same seed exchange buffers directly — the
same buffer-not-pickle discipline the mpi4py guide recommends.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import layer_dims
from ..errors import ConfigError, ShapeError
from ..sampling.base import MiniBatch
from .layers import GCNLayer, LayerCache, SAGELayer


class GNNModel:
    """A stack of GCN or SAGE layers with manual backprop.

    Parameters
    ----------
    layers:
        Layer instances, input side first.
    """

    def __init__(self, layers: Sequence) -> None:
        if not layers:
            raise ConfigError("model needs at least one layer")
        self.layers = list(layers)
        self._caches: list[LayerCache] | None = None

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, minibatch: MiniBatch, x0: np.ndarray,
                global_degrees: np.ndarray | None = None) -> np.ndarray:
        """Run forward propagation; returns logits for the batch targets.

        Parameters
        ----------
        minibatch:
            The sampled computational graph (L blocks).
        x0:
            ``(|V^0|, f^0)`` input features for ``minibatch.input_nodes``.
        global_degrees:
            Full-graph degree array (required by GCN normalization; SAGE
            ignores it).
        """
        if len(minibatch.blocks) != len(self.layers):
            raise ShapeError(
                f"model has {len(self.layers)} layers but batch has "
                f"{len(minibatch.blocks)} blocks")
        if x0.shape[0] != minibatch.input_nodes.size:
            raise ShapeError("x0 rows must match |V^0|")
        h = np.asarray(x0, dtype=np.float64)
        caches: list[LayerCache] = []
        for l, (layer, block) in enumerate(zip(self.layers,
                                               minibatch.blocks)):
            agg = layer.build_aggregator(
                block,
                src_global_ids=minibatch.node_ids[l],
                dst_global_ids=minibatch.node_ids[l + 1],
                global_degrees=global_degrees)
            h, cache = layer.forward(agg, h)
            caches.append(cache)
        self._caches = caches
        return h

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Run backward propagation; accumulates parameter gradients.

        Returns the gradient w.r.t. the input features (rarely needed, but
        useful for gradcheck).
        """
        if self._caches is None:
            raise ShapeError("backward called before forward")
        grad = np.asarray(grad_logits, dtype=np.float64)
        for layer, cache in zip(reversed(self.layers),
                                reversed(self._caches)):
            grad = layer.backward(cache, grad)
        self._caches = None
        return grad

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self) -> list[tuple[str, np.ndarray]]:
        """Named parameter arrays (mutable references, layer order)."""
        out = []
        for i, layer in enumerate(self.layers):
            out.append((f"layer{i}.W", layer.linear.W))
            out.append((f"layer{i}.b", layer.linear.b))
        return out

    def gradients(self) -> list[tuple[str, np.ndarray]]:
        """Named gradient arrays aligned with :meth:`parameters`."""
        out = []
        for i, layer in enumerate(self.layers):
            out.append((f"layer{i}.W", layer.linear.dW))
            out.append((f"layer{i}.b", layer.linear.db))
        return out

    def zero_grad(self) -> None:
        """Clear all accumulated gradients."""
        for layer in self.layers:
            layer.zero_grad()

    @property
    def num_params(self) -> int:
        """Total scalar parameter count (the paper's "model size")."""
        return sum(layer.num_params for layer in self.layers)

    # -- flat views for all-reduce --------------------------------------
    def get_flat_params(self) -> np.ndarray:
        """Copy all parameters into one contiguous float64 vector."""
        return np.concatenate([p.ravel() for _, p in self.parameters()])

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector (inverse of get_flat_params).

        Writes in place so optimizer state keeps referencing the arrays.
        """
        flat = np.asarray(flat, dtype=np.float64)
        if flat.size != self.num_params:
            raise ShapeError("flat vector size mismatch")
        offset = 0
        for _, p in self.parameters():
            p[...] = flat[offset:offset + p.size].reshape(p.shape)
            offset += p.size

    def get_flat_grads(self) -> np.ndarray:
        """Copy all gradients into one contiguous float64 vector."""
        return np.concatenate([g.ravel() for _, g in self.gradients()])

    def set_flat_grads(self, flat: np.ndarray) -> None:
        """Load gradients from a flat vector (used after all-reduce)."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.size != self.num_params:
            raise ShapeError("flat vector size mismatch")
        offset = 0
        for _, g in self.gradients():
            g[...] = flat[offset:offset + g.size].reshape(g.shape)
            offset += g.size

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of all parameters keyed by name."""
        return {name: p.copy() for name, p in self.parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter copies produced by :meth:`state_dict`."""
        mine = dict(self.parameters())
        if set(state) != set(mine):
            raise ShapeError("state dict keys mismatch")
        for name, value in state.items():
            if mine[name].shape != value.shape:
                raise ShapeError(f"shape mismatch for {name}")
            mine[name][...] = value


def build_model(name: str, dims: Sequence[int], seed: int = 0) -> GNNModel:
    """Construct a GCN or GraphSAGE model.

    Parameters
    ----------
    name:
        ``"gcn"`` or ``"sage"``.
    dims:
        Feature lengths ``(f^0, ..., f^L)`` — see
        :func:`repro.config.layer_dims`.
    seed:
        Initializer seed. Two calls with identical arguments produce
        bit-identical models (required for multi-trainer replicas).

    The final layer has no activation (logits feed softmax loss); all
    others use ReLU, matching the paper's model definitions.
    """
    if len(dims) < 2:
        raise ConfigError("dims must contain at least (f0, f1)")
    cls = {"gcn": GCNLayer, "sage": SAGELayer}.get(name)
    if cls is None:
        raise ConfigError(f"unknown model {name!r}")
    rng = np.random.default_rng(seed)
    layers = []
    num_layers = len(dims) - 1
    for l in range(num_layers):
        layers.append(cls(dims[l], dims[l + 1], rng,
                          activation=(l < num_layers - 1)))
    return GNNModel(layers)


def model_size_bytes(dims: Sequence[int], model: str = "gcn",
                     s_feat: int = 4) -> int:
    """Model size in bytes (paper Eq. 13 numerator: Σ f^{l-1} f^l S_feat).

    SAGE doubles the input dimension of every weight matrix (concat).
    Biases are excluded, matching the paper's formula.
    """
    mult = 2 if model == "sage" else 1
    return sum(mult * dims[l - 1] * dims[l] * s_feat
               for l in range(1, len(dims)))
