"""Softmax cross-entropy loss with manual backward.

The loss is the *mean* over the batch targets. Mean reduction is what makes
synchronous multi-trainer SGD equivalent to large-batch single-trainer SGD
(paper §II-B): averaging n equal-size-batch gradients equals the gradient
of the mean over the union batch.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray
                          ) -> tuple[float, np.ndarray]:
    """Return ``(loss, dlogits)`` for integer class labels.

    Numerically stable (max-subtracted) softmax; gradient is
    ``(softmax - onehot) / batch`` for the mean-reduced loss.
    """
    if logits.ndim != 2:
        raise ShapeError("logits must be (batch, classes)")
    labels = np.asarray(labels)
    if labels.shape != (logits.shape[0],):
        raise ShapeError("labels must be (batch,)")
    if labels.size == 0:
        raise ShapeError("empty batch")
    if labels.min() < 0 or labels.max() >= logits.shape[1]:
        raise ShapeError("label out of range")

    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    batch = logits.shape[0]
    nll = -np.log(np.maximum(probs[np.arange(batch), labels], 1e-300))
    loss = float(nll.mean())

    dlogits = probs.copy()
    dlogits[np.arange(batch), labels] -= 1.0
    dlogits /= batch
    return loss, dlogits


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy."""
    if logits.shape[0] == 0:
        return 0.0
    pred = np.argmax(logits, axis=1)
    return float((pred == np.asarray(labels)).mean())
