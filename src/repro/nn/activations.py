"""Element-wise activations (paper Eq. 2: φ = ReLU for both models)."""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """max(x, 0), allocation-free where possible."""
    return np.maximum(x, 0.0)


def relu_grad(pre_activation: np.ndarray,
              upstream: np.ndarray) -> np.ndarray:
    """Backward of ReLU: pass upstream gradient where input was positive.

    Uses the *pre-activation* values; the subgradient at exactly 0 is taken
    as 0 (PyTorch convention).
    """
    return upstream * (pre_activation > 0.0)
