"""Sparse feature aggregation (paper Eq. 1).

Feature aggregation is the irregular-memory-access phase of GNN training
(paper §II-A). Two implementations are provided:

* :class:`SparseAggregator` — a SciPy CSR sparse-matmul path. This is the
  production path: one BLAS-like spmm per layer for forward and one
  (transposed) for backward.
* :func:`segment_sum_aggregate` — the segment-sum path that mirrors the FPGA
  scatter-gather kernel (paper §IV-C, Fig. 6), dispatched through the kernel
  registry (:mod:`repro.kernels`): edge-serial scatter-add on the reference
  tier, destination-sorted ``reduceat`` on the fast tier. Tests assert both
  paths agree to floating-point tolerance; the hardware kernel models reuse
  the reference tier's edge ordering to count traffic.

Weight helpers produce the edge coefficient vectors for the two models:
:func:`gcn_edge_weights` implements the symmetric ``1/sqrt(D(u)D(v))``
normalization of paper Eq. 3, :func:`mean_edge_weights` the neighbor-mean
of paper Eq. 4.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import kernels
from ..errors import ShapeError
from ..sampling.base import LayerBlock


class SparseAggregator:
    """Weighted sum aggregation ``A = S @ H`` for one layer block.

    ``S`` is the ``(num_dst, num_src)`` sparse matrix with
    ``S[dst, src] = w(edge)``; duplicate ``(dst, src)`` entries are summed
    (scipy semantics), which matches multi-edge aggregation.

    The transpose matmul used by the backward pass is cached.
    """

    def __init__(self, block: LayerBlock,
                 edge_weights: np.ndarray | None = None) -> None:
        if edge_weights is None:
            edge_weights = np.ones(block.num_edges, dtype=np.float64)
        edge_weights = np.asarray(edge_weights, dtype=np.float64)
        if edge_weights.shape != (block.num_edges,):
            raise ShapeError("edge_weights must have one entry per edge")
        self.block = block
        self.matrix = sp.csr_matrix(
            (edge_weights, (block.dst_local, block.src_local)),
            shape=(block.num_dst, block.num_src))
        self._matrix_t = self.matrix.T.tocsr()

    def forward(self, h_src: np.ndarray) -> np.ndarray:
        """Aggregate source features into destination rows."""
        if h_src.shape[0] != self.block.num_src:
            raise ShapeError(
                f"expected {self.block.num_src} source rows, "
                f"got {h_src.shape[0]}")
        return self.matrix @ h_src

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. source features: ``S^T @ dA``."""
        if grad_out.shape[0] != self.block.num_dst:
            raise ShapeError(
                f"expected {self.block.num_dst} dest rows, "
                f"got {grad_out.shape[0]}")
        return self._matrix_t @ grad_out


def segment_sum_aggregate(block: LayerBlock, h_src: np.ndarray,
                          edge_weights: np.ndarray | None = None
                          ) -> np.ndarray:
    """Segment-sum aggregation (FPGA-kernel-equivalent path).

    Validates the block shapes, then dispatches to the kernel registry
    (:mod:`repro.kernels`): the ``reference`` tier streams edges in
    source-sorted order — the order the Feature Duplicator feeds them
    (paper §IV-C) — through an edge-serial scatter-add; the default
    ``fast`` tier computes the same Eq.-1 sums via destination-sorted
    ``np.add.reduceat`` runs (tolerance-equivalent: the accumulation
    order differs). Functionally identical to
    :class:`SparseAggregator.forward`, the production path the model
    layers use.
    """
    if h_src.shape[0] != block.num_src:
        raise ShapeError("source feature row count mismatch")
    if edge_weights is not None:
        edge_weights = np.asarray(edge_weights, dtype=np.float64)
        if edge_weights.shape != (block.num_edges,):
            raise ShapeError("edge_weights must have one entry per edge")
    return kernels.segment_sum(block.src_local, block.dst_local, h_src,
                               block.num_dst,
                               edge_weights=edge_weights)


def mean_edge_weights(block: LayerBlock) -> np.ndarray:
    """Per-edge weights realizing the neighbor mean of paper Eq. 4.

    Each destination's incident edges get weight ``1 / indeg(dst)`` within
    the block. Destinations with no sampled neighbors contribute a zero
    mean (no edges exist, so no weights are needed).
    """
    indeg = np.bincount(block.dst_local, minlength=block.num_dst)
    safe = np.maximum(indeg, 1).astype(np.float64)
    return 1.0 / safe[block.dst_local]


def gcn_edge_weights(block: LayerBlock, src_global_degree: np.ndarray,
                     dst_global_degree: np.ndarray) -> np.ndarray:
    """Per-edge weights ``1/sqrt(D(u) D(v))`` of paper Eq. 3.

    Degrees are *global* graph degrees (+1 for the implicit self-loop, the
    standard Kipf-Welling normalization), indexed per edge endpoint.

    Parameters
    ----------
    src_global_degree / dst_global_degree:
        Degree of each edge's source / destination vertex in the full
        graph, aligned with the block's edge arrays.
    """
    src_d = np.asarray(src_global_degree, dtype=np.float64) + 1.0
    dst_d = np.asarray(dst_global_degree, dtype=np.float64) + 1.0
    if src_d.shape != (block.num_edges,) or dst_d.shape != \
            (block.num_edges,):
        raise ShapeError("degree arrays must have one entry per edge")
    return 1.0 / np.sqrt(src_d * dst_d)


def add_self_edges(block: LayerBlock) -> LayerBlock:
    """Return a block with self-edges ``(i, i)`` appended for each dst.

    Valid because destination vertices are a prefix of the source list
    (MiniBatch alignment invariant), so local id ``i < num_dst`` denotes
    the same vertex on both sides. GCN aggregates over ``N(v) ∪ {v}``
    (paper Eq. 1); this materializes the ``{v}`` term.
    """
    loops = np.arange(block.num_dst, dtype=np.int64)
    return LayerBlock(
        src_local=np.concatenate([block.src_local, loops]),
        dst_local=np.concatenate([block.dst_local, loops]),
        num_src=block.num_src,
        num_dst=block.num_dst,
    )
