"""Parameter initializers.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is reproducible from a single seed (required by the
sync-SGD-equivalence tests, which must build bit-identical model replicas).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def xavier_uniform(shape: tuple[int, ...],
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-a, a) with a = sqrt(6 / (fan_in+out)).

    Matches the PyTorch-Geometric default for GCN/SAGE linear weights.
    """
    if len(shape) != 2:
        raise ShapeError(f"xavier_uniform expects a 2-D shape, got {shape}")
    fan_in, fan_out = shape
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float64)


def zeros_init(shape: tuple[int, ...],
               rng: np.random.Generator | None = None) -> np.ndarray:
    """Zero init (biases)."""
    return np.zeros(shape, dtype=np.float64)
