"""Finite-difference gradient verification.

Backward passes in this library are hand-derived; :func:`numeric_gradient`
and :func:`check_model_gradients` verify them against central differences.
These run in the test suite on small batches so every layer's math is
checked end to end.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..sampling.base import MiniBatch
from .loss import softmax_cross_entropy
from .models import GNNModel


def numeric_gradient(f: Callable[[], float], array: np.ndarray,
                     eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array``.

    ``array`` is perturbed in place and restored; ``f`` must re-read it on
    each call (true for closures over model parameters).
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f()
        flat[i] = orig - eps
        f_minus = f()
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_model_gradients(model: GNNModel, minibatch: MiniBatch,
                          x0: np.ndarray, labels: np.ndarray,
                          global_degrees: np.ndarray | None = None,
                          rtol: float = 1e-4, atol: float = 1e-6,
                          max_entries: int = 64) -> float:
    """Verify analytic parameter gradients against finite differences.

    Checks up to ``max_entries`` randomly chosen scalar entries of every
    parameter tensor (full checks are O(P) loss evaluations). Returns the
    worst relative error found; raises AssertionError past tolerance.
    """

    def loss_fn() -> float:
        logits = model.forward(minibatch, x0, global_degrees)
        loss, _ = softmax_cross_entropy(logits, labels)
        model._caches = None
        return loss

    # Analytic gradients.
    model.zero_grad()
    logits = model.forward(minibatch, x0, global_degrees)
    _, dlogits = softmax_cross_entropy(logits, labels)
    model.backward(dlogits)
    analytic = {name: g.copy() for name, g in model.gradients()}

    rng = np.random.default_rng(0)
    worst = 0.0
    for name, p in model.parameters():
        flat = p.ravel()
        n_check = min(max_entries, flat.size)
        idx = rng.choice(flat.size, size=n_check, replace=False)
        eps = 1e-6
        for i in idx:
            orig = flat[i]
            flat[i] = orig + eps
            f_plus = loss_fn()
            flat[i] = orig - eps
            f_minus = loss_fn()
            flat[i] = orig
            num = (f_plus - f_minus) / (2.0 * eps)
            ana = analytic[name].ravel()[i]
            denom = max(abs(num), abs(ana), atol)
            rel = abs(num - ana) / denom
            worst = max(worst, rel)
            assert rel <= rtol or abs(num - ana) <= atol, (
                f"gradient mismatch at {name}[{i}]: "
                f"numeric={num:.3e} analytic={ana:.3e} rel={rel:.3e}")
    return worst
