"""Optimizers operating on a model's named parameter/gradient arrays.

Updates are in place so every reference (trainer replicas hold their own
models; the synchronizer writes averaged gradients back before stepping)
stays valid.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ConfigError
from .models import GNNModel


class Optimizer(abc.ABC):
    """Base optimizer bound to one model."""

    def __init__(self, model: GNNModel) -> None:
        self.model = model

    @abc.abstractmethod
    def step(self) -> None:
        """Apply one update from the model's current gradients."""

    def zero_grad(self) -> None:
        """Convenience passthrough."""
        self.model.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum.

    Plain SGD (momentum=0) is what the synchronous-SGD equivalence proof
    relies on; momentum is provided for the examples.
    """

    def __init__(self, model: GNNModel, lr: float,
                 momentum: float = 0.0) -> None:
        super().__init__(model)
        if lr <= 0:
            raise ConfigError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ConfigError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] | None = None
        if momentum > 0.0:
            self._velocity = {name: np.zeros_like(p)
                              for name, p in model.parameters()}

    def step(self) -> None:
        grads = dict(self.model.gradients())
        for name, p in self.model.parameters():
            g = grads[name]
            if self._velocity is not None:
                v = self._velocity[name]
                v *= self.momentum
                v += g
                p -= self.lr * v
            else:
                p -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, model: GNNModel, lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        super().__init__(model)
        if lr <= 0:
            raise ConfigError("lr must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._t = 0
        self._m = {name: np.zeros_like(p)
                   for name, p in model.parameters()}
        self._v = {name: np.zeros_like(p)
                   for name, p in model.parameters()}

    def step(self) -> None:
        self._t += 1
        grads = dict(self.model.gradients())
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for name, p in self.model.parameters():
            g = grads[name]
            m, v = self._m[name], self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
