#!/usr/bin/env python
"""Quickstart: train a GraphSAGE model with HyScale-GNN in two minutes.

Builds a small synthetic dataset, constructs the hybrid training system
on the paper's CPU-FPGA platform (2 FPGAs to keep it snappy), trains a
few functional epochs, and prints the loss curve, the virtual-time
pipeline picture, and where the bottleneck sits.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.config import TrainingConfig
from repro.graph.datasets import tiny_dataset
from repro.hw import hyscale_cpu_fpga_platform
from repro.runtime import HyScaleGNN
from repro.sim.trace import render_gantt


def main() -> None:
    # 1. A dataset. (Swap in repro.graph.load_dataset("ogbn-products")
    #    for a scaled stand-in of a paper dataset.)
    dataset = tiny_dataset(num_vertices=1000, feature_dim=32,
                           num_classes=5, avg_degree=12.0, seed=0)
    print(f"dataset: {dataset.graph.num_vertices} vertices, "
          f"{dataset.graph.num_edges} edges, "
          f"{dataset.train_ids.size} train targets")

    # 2. The training recipe (paper defaults, scaled down).
    cfg = TrainingConfig(model="sage", minibatch_size=64,
                         fanouts=(10, 5), hidden_dim=32,
                         learning_rate=0.05, seed=1)

    # 3. The system: CPU trainer + 2 FPGA trainers, DRM and two-stage
    #    feature prefetching on (all defaults of SystemConfig).
    system = HyScaleGNN(dataset, hyscale_cpu_fpga_platform(2), cfg)
    print(f"trainers: {[t.name for t in system.trainers]}")
    print(f"initial workload split: CPU={system.split.cpu_targets} "
          f"targets, accelerators={system.split.accel_targets}")

    # 4. Train. Forward/backward/all-reduce are real NumPy math; the
    #    epoch time is virtual (modelled-hardware) time.
    for epoch in range(5):
        report = system.train_epoch()
        print(f"epoch {epoch}: loss={np.mean(report.losses):.4f} "
              f"acc={np.mean(report.accuracies):.3f} "
              f"virtual_time={report.epoch_time_s * 1e3:.2f} ms "
              f"({report.throughput_mteps:.0f} MTEPS, "
              f"bottleneck={report.bottleneck_stage()})")

    # 5. All replicas agree after synchronous training.
    assert system.synchronizer.replicas_consistent()
    print("replicas consistent: True")

    # 6. Peek at the pipeline (first few iterations of the last epoch).
    spans = [s for s in report.timeline.spans if s.iteration < 3]
    from repro.sim.trace import Timeline
    print("\nPipeline timeline (first 3 iterations):")
    print(render_gantt(Timeline(spans), width=76))


if __name__ == "__main__":
    main()
