#!/usr/bin/env python
"""Live processor-accelerator protocol demo (paper Listing 1, Fig. 5).

Runs hybrid synchronous-SGD training on *real threads*: a producer
thread plays Mini-batch Sampler + Feature Loader filling bounded
prefetch buffers; trainer threads train model replicas; the
synchronizer waits for every trainer's DONE, all-reduces, and releases
the next iteration after all ACKs — the exact condition-variable
handshake of the paper's pthread implementation.

Prints the protocol event log for the first iterations and validates
every ordering invariant.

Run:  python examples/threaded_protocol.py
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig, TrainingConfig
from repro.graph.datasets import tiny_dataset
from repro.hw import hyscale_cpu_fpga_platform
from repro.runtime import ThreadedExecutor, validate_protocol


def main() -> None:
    dataset = tiny_dataset(num_vertices=800, feature_dim=24,
                           num_classes=4, avg_degree=10.0, seed=2)
    cfg = TrainingConfig(model="gcn", minibatch_size=48,
                         fanouts=(6, 4), hidden_dim=24,
                         learning_rate=0.05, seed=7)

    executor = ThreadedExecutor(dataset, cfg, num_trainers=3,
                                prefetch_depth=2, timeout_s=60)
    print("running 8 iterations on 3 trainer threads + producer ...")
    report = executor.run(8)

    print(f"\nwall time: {report.wall_time_s:.2f} s")
    print(f"losses: {[round(l, 3) for l in report.losses]}")
    print(f"replicas consistent: {report.replicas_consistent}")
    print(f"prefetch high-water mark: {report.prefetch_high_water} "
          f"(depth 2)")

    validate_protocol(report.protocol_log, executor.num_trainers)
    print("protocol invariants: OK "
          "(n DONEs -> 1 SYNC -> n ACKs per iteration, no interleave)")

    print("\nprotocol log, iterations 0-1:")
    for event in report.protocol_log.events:
        if event.iteration > 1:
            break
        print(f"  iter {event.iteration}: {event.signal.value:5s} "
              f"from {event.sender}")

    # ------------------------------------------------------------------
    # The shared runtime core means the threaded plane also runs the
    # full hybrid system: CPU+FPGA split, DRM re-balancing and int8
    # PCIe transfer on live threads — identical results to
    # HyScaleGNN.train_epoch for the same seed (see
    # tests/integration/test_backend_equivalence.py).
    # ------------------------------------------------------------------
    print("\nhybrid + DRM + int8 transfer on threads:")
    hybrid = ThreadedExecutor(
        dataset, cfg,
        sys_cfg=SystemConfig(hybrid=True, drm=True, prefetch=True,
                             transfer_precision="int8"),
        platform=hyscale_cpu_fpga_platform(2), timeout_s=60)
    print(f"trainers: {[t.name for t in hybrid.trainers]}")
    rep = hybrid.run_epoch()
    print(f"epoch: {rep.iterations} iterations, "
          f"final loss {rep.losses[-1]:.3f}, "
          f"virtual time {rep.virtual_time_s * 1e3:.2f} ms, "
          f"DRM decisions {len(hybrid.drm.decisions)}")
    print(f"replicas consistent: {rep.replicas_consistent}")


if __name__ == "__main__":
    main()
