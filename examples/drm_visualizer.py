#!/usr/bin/env python
"""Watch the DRM engine rebalance a deliberately bad task mapping.

Starts the hybrid system from a *mis-sized* workload split (everything
on the accelerators, CPU idle, loader starved of threads), then lets
Algorithm 1 run for 150 simulated iterations and plots (in ASCII) how
the per-iteration time falls as balance_work / balance_thread moves
fire and the revert guard rejects regressions.

Run:  python examples/drm_visualizer.py
"""

from __future__ import annotations

import numpy as np

from repro.config import ABLATION_PRESETS, TrainingConfig
from repro.graph.datasets import load_dataset
from repro.hw import hyscale_cpu_gpu_platform
from repro.perfmodel.model import WorkloadSplit
from repro.runtime import HyScaleGNN


def sparkline(values, width=64) -> str:
    blocks = " .:-=+*#%@"
    values = np.asarray(values, dtype=float)
    if values.size > width:
        idx = np.linspace(0, values.size - 1, width).astype(int)
        values = values[idx]
    lo, hi = values.min(), values.max()
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))]
                   for v in values)


def main() -> None:
    dataset = load_dataset("ogbn-papers100M", seed=0)
    cfg = TrainingConfig(model="gcn", minibatch_size=1024,
                         fanouts=(25, 10), hidden_dim=256, seed=3)
    system = HyScaleGNN(dataset, hyscale_cpu_gpu_platform(4), cfg,
                        ABLATION_PRESETS["hybrid_drm_tfp"],
                        full_scale=True, profile_probes=3)

    # Sabotage the compile-time mapping: accelerators take everything,
    # the CPU trainer idles, the loader gets almost no threads.
    system.split = WorkloadSplit(
        cpu_targets=0, accel_targets=(1280,) * 4,
        sample_threads=224, load_threads=16, train_threads=16)
    print("sabotaged split:", system.split)

    report = system.simulate_epoch(iterations=150)
    iter_times = [st.iteration_time(True) * 1e3
                  for st in report.stage_history]
    print(f"\niteration time: first={iter_times[0]:.2f} ms "
          f"-> last={iter_times[-1]:.2f} ms "
          f"({iter_times[0] / iter_times[-1]:.2f}x recovered)")
    print("trend:", sparkline(iter_times))

    print("\nfinal split:", system.split)
    print("\nDRM decision stream (non-trivial only):")
    shown = 0
    for d in system.drm.decisions:
        if d.action == "none":
            continue
        print(f"  it {d.iteration:3d}: {d.action:14s} {d.detail} "
              f"[bottleneck={d.bottleneck}]")
        shown += 1
        if shown >= 20:
            print("  ...")
            break


if __name__ == "__main__":
    main()
