#!/usr/bin/env python
"""Sampler study: neighbor sampling vs the GraphSAINT family.

HyScale-GNN's Mini-batch Sampler component is algorithm-pluggable (paper
§III-A cites both GraphSAGE [2] and GraphSAINT [29]). This example trains
the same model under four samplers on the same scaled dataset and
compares (a) learning behaviour and (b) the batch shapes that drive the
timing model — subgraph samplers produce denser, smaller-|V^0| batches,
which shifts the pipeline bottleneck away from PCIe.

Run:  python examples/saint_sampler_study.py
"""

from __future__ import annotations

import numpy as np

from repro.config import layer_dims
from repro.graph.datasets import load_dataset
from repro.nn import Adam, build_model, softmax_cross_entropy
from repro.sampling import (
    NeighborSampler,
    SaintEdgeSampler,
    SaintNodeSampler,
    SaintRWSampler,
)


def train_with(sampler, dataset, dims, iterations=25, lr=5e-3,
               seed=0) -> tuple[list[float], list]:
    model = build_model("sage", dims, seed=seed)
    opt = Adam(model, lr=lr)
    degrees = dataset.graph.out_degrees
    losses, shapes = [], []
    batches = iter(sampler.epoch_batches(512, seed=seed + 1))
    for _ in range(iterations):
        try:
            mb = next(batches)
        except StopIteration:
            batches = iter(sampler.epoch_batches(512, seed=seed + 2))
            mb = next(batches)
        x0 = dataset.features[mb.input_nodes].astype(np.float64)
        labels = dataset.labels[mb.targets]
        model.zero_grad()
        logits = model.forward(mb, x0, degrees)
        loss, dl = softmax_cross_entropy(logits, labels)
        model.backward(dl)
        opt.step()
        losses.append(loss)
        shapes.append(mb.stats())
    return losses, shapes


def main() -> None:
    dataset = load_dataset("ogbn-products", scale=1 / 512, seed=0)
    dims = layer_dims(dataset.spec.feature_dim, 64,
                      dataset.spec.num_classes, 2)
    f0 = dataset.spec.feature_dim
    ids = dataset.train_ids

    samplers = {
        "neighbor (25,10)": NeighborSampler(
            dataset.graph, ids, (25, 10), f0, seed=1),
        "SAINT-node": SaintNodeSampler(dataset.graph, ids, 2, f0,
                                       seed=2),
        "SAINT-edge": SaintEdgeSampler(dataset.graph, ids, 2, f0,
                                       seed=3),
        "SAINT-walk": SaintRWSampler(dataset.graph, ids, 2, f0,
                                     seed=4, walk_length=3),
    }

    print(f"{'sampler':18s} {'loss[0]':>8s} {'loss[-1]':>9s} "
          f"{'|V0|':>7s} {'E/batch':>8s} {'featKB':>7s}")
    for name, sampler in samplers.items():
        losses, shapes = train_with(sampler, dataset, dims)
        v0 = np.mean([s.num_input_nodes for s in shapes])
        e = np.mean([s.total_edges for s in shapes])
        kb = np.mean([s.input_feature_bytes for s in shapes]) / 1e3
        print(f"{name:18s} {losses[0]:8.3f} {np.mean(losses[-5:]):9.3f} "
              f"{v0:7.0f} {e:8.0f} {kb:7.0f}")

    print("\nSubgraph samplers load far fewer input features per "
          "trained edge,\nwhich is why the Sampler component is "
          "pluggable in the system design.")


if __name__ == "__main__":
    main()
