#!/usr/bin/env python
"""Large-scale epoch simulation: reproduce a slice of paper Fig. 10.

Loads the scaled ogbn-papers100M stand-in, then simulates *paper-scale*
epochs (1.2M train vertices, batch 1024, fanouts 25/10) on three system
configurations:

* the multi-GPU PyTorch-Geometric baseline,
* HyScale-GNN on the CPU-GPU node,
* HyScale-GNN on the CPU-FPGA node,

printing per-stage breakdowns, the DRM engine's final workload split,
and the speedups to compare with the paper's Fig. 10 middle panel
(CPU+GPU 2.08x, CPU+FPGA 12.6x for GCN).

Run:  python examples/large_graph_epoch.py  [gcn|sage]
"""

from __future__ import annotations

import sys

from repro.baselines import PyGMultiGPUBaseline
from repro.config import ABLATION_PRESETS, TrainingConfig
from repro.graph.datasets import load_dataset
from repro.hw import (
    hyscale_cpu_fpga_platform,
    hyscale_cpu_gpu_platform,
)
from repro.runtime import HyScaleGNN


def main(model: str = "gcn") -> None:
    print("loading scaled ogbn-papers100M stand-in ...")
    dataset = load_dataset("ogbn-papers100M", seed=0)
    print(f"  scaled graph: {dataset.graph.num_vertices:,} vertices / "
          f"{dataset.graph.num_edges:,} edges "
          f"(full scale: {dataset.spec.num_vertices:,} / "
          f"{dataset.spec.num_edges:,})")

    cfg = TrainingConfig(model=model, minibatch_size=1024,
                         fanouts=(25, 10), hidden_dim=256, seed=1)

    # --- multi-GPU PyG baseline -------------------------------------
    baseline = PyGMultiGPUBaseline(dataset, cfg, profile_probes=3)
    rep_base = baseline.simulate_epoch()
    print(f"\n[multi-GPU baseline]  epoch = {rep_base.epoch_time_s:.2f} s "
          f"({rep_base.iterations} iterations, serialized stages)")
    st = rep_base.stage_history[0]
    print("  stage times (ms):",
          {k: round(v * 1e3, 2) for k, v in st.as_dict().items()})

    # --- hybrid systems ----------------------------------------------
    for platform in (hyscale_cpu_gpu_platform(4),
                     hyscale_cpu_fpga_platform(4)):
        system = HyScaleGNN(dataset, platform, cfg,
                            ABLATION_PRESETS["hybrid_drm_tfp"],
                            full_scale=True, profile_probes=3)
        rep = system.simulate_epoch()
        speedup = rep_base.epoch_time_s / rep.epoch_time_s
        print(f"\n[{platform.name}]")
        print(f"  epoch = {rep.epoch_time_s:.2f} s  "
              f"(speedup {speedup:.2f}x over baseline, "
              f"bottleneck = {rep.bottleneck_stage()})")
        print(f"  predicted (Eq. 6): "
              f"{system.predicted_epoch_time():.2f} s")
        split = system.split
        print(f"  DRM final split: CPU={split.cpu_targets} targets, "
              f"accel={split.accel_targets}, threads="
              f"(sample={split.sample_threads}, "
              f"load={split.load_threads}, "
              f"train={split.train_threads})")
        if system.drm is not None:
            actions = {}
            for d in system.drm.decisions:
                actions[d.action] = actions.get(d.action, 0) + 1
            print(f"  DRM decisions: {actions}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gcn")
